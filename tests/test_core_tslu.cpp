// TSLU and tournament pivoting tests: partition/tree helpers, candidate
// election, and the key CALU stability properties (|L| <= 1 under the
// tournament, equivalence with GEPP for Tr=1, residual smallness).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/test_utils.hpp"
#include "core/partition.hpp"
#include "core/tournament.hpp"
#include "core/tslu.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::core {
namespace {

using camult::test::kResidualThreshold;
using camult::test::matrices_near;

TEST(Partition, EvenSplit) {
  auto p = partition_panel_rows(800, 100, 4, 100);
  ASSERT_EQ(p.count(), 4);
  for (idx i = 0; i < 4; ++i) {
    EXPECT_EQ(p.start[static_cast<std::size_t>(i)], i * 200);
    EXPECT_EQ(p.rows[static_cast<std::size_t>(i)], 200);
  }
}

TEST(Partition, BoundariesAreBlockAligned) {
  auto p = partition_panel_rows(1050, 100, 4, 100);
  for (std::size_t i = 0; i < p.start.size(); ++i) {
    EXPECT_EQ(p.start[i] % 100, 0);
  }
  // Covers all rows exactly.
  idx total = 0;
  for (idx r : p.rows) total += r;
  EXPECT_EQ(total, 1050);
}

TEST(Partition, ShortPanelReducesLeafCount) {
  auto p = partition_panel_rows(150, 100, 8, 100);
  // Only one leaf can have >= 100 rows out of 150.
  EXPECT_EQ(p.count(), 1);
  EXPECT_EQ(p.rows[0], 150);
}

TEST(Partition, RaggedTailMeetsMinimum) {
  // 310 rows, b=100, tr=3: leaves of 200/110 or fewer — the last leaf must
  // keep >= 100 rows.
  auto p = partition_panel_rows(310, 100, 3, 100);
  for (idx r : p.rows) EXPECT_GE(r, 100);
  idx total = 0;
  for (idx r : p.rows) total += r;
  EXPECT_EQ(total, 310);
}

TEST(Partition, SingleRowPanel) {
  auto p = partition_panel_rows(1, 100, 4, 1);
  EXPECT_EQ(p.count(), 1);
  EXPECT_EQ(p.rows[0], 1);
}

TEST(ReductionSchedule, BinaryFourLeaves) {
  auto s = reduction_schedule(4, ReductionTree::Binary);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].sources, (std::vector<int>{0, 1}));
  EXPECT_EQ(s[0].level, 1);
  EXPECT_EQ(s[1].sources, (std::vector<int>{2, 3}));
  EXPECT_EQ(s[1].level, 1);
  EXPECT_EQ(s[2].sources, (std::vector<int>{0, 2}));
  EXPECT_EQ(s[2].level, 2);
}

TEST(ReductionSchedule, BinaryNonPowerOfTwo) {
  auto s = reduction_schedule(5, ReductionTree::Binary);
  // 5 leaves: (0,1) (2,3) at level 1; (0,2) level 2; (0,4) level 3.
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[3].sources, (std::vector<int>{0, 4}));
}

TEST(ReductionSchedule, FlatIsOneStep) {
  auto s = reduction_schedule(6, ReductionTree::Flat);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].sources.size(), 6u);
}

TEST(ReductionSchedule, SingleLeafNoSteps) {
  EXPECT_TRUE(reduction_schedule(1, ReductionTree::Binary).empty());
  EXPECT_TRUE(reduction_schedule(1, ReductionTree::Flat).empty());
}

TEST(Tournament, LeafElectsGeppPivotRows) {
  const idx rows = 20, b = 4;
  Matrix block = random_distinct_magnitude_matrix(rows, b, 3);
  Candidates c = tournament_leaf(block, 100, b);
  ASSERT_EQ(c.values.rows(), b);
  ASSERT_EQ(c.row_index.size(), static_cast<std::size_t>(b));

  // Reference: GEPP and collect the first b rows of the permuted block.
  Matrix lu = block;
  PivotVector ipiv;
  lapack::getf2(lu.view(), ipiv);
  Permutation perm = ipiv_to_permutation(ipiv, rows);
  for (idx r = 0; r < b; ++r) {
    EXPECT_EQ(c.row_index[static_cast<std::size_t>(r)],
              100 + perm[static_cast<std::size_t>(r)]);
    for (idx j = 0; j < b; ++j) {
      EXPECT_EQ(c.values(r, j), block(perm[static_cast<std::size_t>(r)], j));
    }
  }
}

TEST(Tournament, ShortLeafContributesAllRows) {
  Matrix block = random_matrix(3, 5, 4);
  Candidates c = tournament_leaf(block, 0, 5);
  EXPECT_EQ(c.values.rows(), 3);
}

TEST(Tournament, CombinePicksFromBothSides) {
  // Side A has tiny entries, side B huge: all winners must come from B.
  const idx b = 3;
  Matrix small_m = random_matrix(b, b, 5);
  Matrix big = random_matrix(b, b, 6);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i < b; ++i) {
      small_m(i, j) *= 1e-6;
      big(i, j) = big(i, j) * 100.0 + ((i == j) ? 500.0 : 0.0);
    }
  }
  Candidates ca = tournament_leaf(small_m, 0, b);
  Candidates cb = tournament_leaf(big, 10, b);
  Candidates root = tournament_combine({&ca, &cb}, b);
  for (idx r = 0; r < b; ++r) {
    EXPECT_GE(root.row_index[static_cast<std::size_t>(r)], 10)
        << "winner " << r << " should come from the large block";
  }
}

TEST(Tournament, WinnersToPivotsRoundTrip) {
  // Applying the generated swap sequence must place the winners on top, in
  // order.
  const idx m = 12;
  Matrix a(m, 1);
  for (idx i = 0; i < m; ++i) a(i, 0) = static_cast<double>(i);
  std::vector<idx> winners = {7, 2, 9, 0};
  PivotVector piv = winners_to_pivots(winners, m);
  lapack::laswp(a.view(), 0, static_cast<idx>(winners.size()), piv);
  for (std::size_t k = 0; k < winners.size(); ++k) {
    EXPECT_EQ(a(static_cast<idx>(k), 0), static_cast<double>(winners[k]));
  }
}

TEST(Tournament, WinnersToPivotsWithInterdependentSwaps) {
  // Winners whose positions are displaced by earlier swaps.
  const idx m = 8;
  Matrix a(m, 1);
  for (idx i = 0; i < m; ++i) a(i, 0) = static_cast<double>(i);
  std::vector<idx> winners = {5, 0, 1, 2};  // 0,1,2 get displaced by step 0
  PivotVector piv = winners_to_pivots(winners, m);
  lapack::laswp(a.view(), 0, 4, piv);
  for (std::size_t k = 0; k < winners.size(); ++k) {
    EXPECT_EQ(a(static_cast<idx>(k), 0), static_cast<double>(winners[k]));
  }
}

struct TsluParam {
  idx m, b, tr;
  ReductionTree tree;
};

class TsluSweep : public ::testing::TestWithParam<TsluParam> {};

TEST_P(TsluSweep, ResidualSmallAndLBounded) {
  const auto& p = GetParam();
  Matrix a = random_matrix(p.m, p.b, 11);
  Matrix lu = a;
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = p.tr;
  opts.tree = p.tree;
  const idx info = tslu_factor(lu.view(), ipiv, opts);
  EXPECT_EQ(info, 0);
  EXPECT_LT(lapack::lu_residual(a, lu, ipiv), kResidualThreshold);
  // Unlike GEPP, tournament pivoting does not guarantee |L| <= 1, but on
  // random matrices the multipliers stay modest (the paper's stability
  // claim). A blow-up here would indicate a broken pivot selection.
  for (idx j = 0; j < p.b; ++j) {
    for (idx i = j + 1; i < p.m; ++i) {
      EXPECT_LE(std::abs(lu(i, j)), 50.0) << "at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TsluSweep,
    ::testing::Values(TsluParam{64, 8, 1, ReductionTree::Binary},
                      TsluParam{64, 8, 2, ReductionTree::Binary},
                      TsluParam{64, 8, 4, ReductionTree::Binary},
                      TsluParam{64, 8, 4, ReductionTree::Flat},
                      TsluParam{128, 16, 8, ReductionTree::Binary},
                      TsluParam{128, 16, 8, ReductionTree::Flat},
                      TsluParam{200, 25, 3, ReductionTree::Binary},
                      TsluParam{333, 32, 5, ReductionTree::Flat},
                      TsluParam{1000, 100, 4, ReductionTree::Binary},
                      TsluParam{97, 13, 7, ReductionTree::Binary},
                      TsluParam{16, 16, 4, ReductionTree::Binary},
                      TsluParam{17, 16, 4, ReductionTree::Binary}));

TEST(Tslu, Tr1IsExactlyGepp) {
  Matrix a = random_distinct_magnitude_matrix(80, 10, 13);
  Matrix lu1 = a, lu2 = a;
  PivotVector p1, p2;
  TsluOptions opts;
  opts.tr = 1;
  EXPECT_EQ(tslu_factor(lu1.view(), p1, opts), 0);
  EXPECT_EQ(lapack::rgetf2(lu2.view(), p2), 0);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(test::max_diff(lu1, lu2), 0.0);
}

TEST(Tslu, SameWinnersRegardlessOfTree) {
  // On distinct-magnitude inputs the set of selected pivot ROWS may differ
  // between trees in exotic cases, but for a fixed tree the factorization
  // must be deterministic; and both trees must produce valid factorizations
  // of the same matrix.
  Matrix a = random_distinct_magnitude_matrix(120, 12, 17);
  for (ReductionTree tree : {ReductionTree::Binary, ReductionTree::Flat}) {
    Matrix lu1 = a, lu2 = a;
    PivotVector p1, p2;
    TsluOptions opts;
    opts.tr = 4;
    opts.tree = tree;
    tslu_factor(lu1.view(), p1, opts);
    tslu_factor(lu2.view(), p2, opts);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(test::max_diff(lu1, lu2), 0.0);
  }
}

TEST(Tslu, GrowthBoundedOnAdversarialMatrix) {
  // The GEPP worst-case growth matrix: tournament pivoting's growth stays
  // modest relative to the 2^(n-1) bound at this size because the panel is
  // narrow.
  const idx m = 64, b = 16;
  Matrix a = random_matrix(m, b, 19);
  Matrix lu = a;
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = 4;
  tslu_factor(lu.view(), ipiv, opts);
  const double growth = lapack::pivot_growth(a, lu);
  EXPECT_LT(growth, 1e4);  // far below catastrophic
}

TEST(Tslu, SingularPanelReportsInfo) {
  Matrix a = random_matrix(40, 6, 21);
  for (idx i = 0; i < 40; ++i) a(i, 3) = 0.0;  // zero column
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = 4;
  const idx info = tslu_factor(a.view(), ipiv, opts);
  EXPECT_EQ(info, 4);  // 1-based
}

TEST(Tslu, SingularPanelMonitorOffStaysFinite) {
  // Regression for the unguarded U^{-1} divide: with the monitor off the
  // tournament's zero pivot must still yield FINITE factors (the divide is
  // skipped for exactly-zero diagonals, mirroring getf2's skipped scal),
  // not a column of Inf below the zero pivot.
  Matrix a = random_matrix(40, 6, 21);
  for (idx i = 0; i < 40; ++i) a(i, 3) = 0.0;
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = 4;
  opts.monitor = false;
  const idx info = tslu_factor(a.view(), ipiv, opts);
  EXPECT_EQ(info, 4);
  for (idx j = 0; j < 6; ++j) {
    for (idx i = 0; i < 40; ++i) {
      EXPECT_TRUE(std::isfinite(a(i, j))) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(Tslu, SingularPanelFallbackIsBitwiseGepp) {
  // With the monitor on, a zero pivot discards the tournament and
  // refactors the pristine panel with full-panel GEPP — the result must be
  // bitwise identical to running the kernel directly, pivots included.
  Matrix a = random_matrix(40, 6, 21);
  for (idx i = 0; i < 40; ++i) a(i, 3) = 0.0;
  Matrix lu = a;
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = 4;
  HealthReport health;
  const idx info = tslu_factor(lu.view(), ipiv, opts, &health);
  EXPECT_EQ(info, 4);
  EXPECT_EQ(health.fallback_panels, 1);
  ASSERT_EQ(health.fallback_list.size(), 1u);
  EXPECT_EQ(health.fallback_list[0], 0);

  Matrix ref = a;
  PivotVector ref_ipiv;
  EXPECT_EQ(lapack::rgetf2(ref.view(), ref_ipiv), 4);
  EXPECT_EQ(ipiv, ref_ipiv);
  EXPECT_EQ(test::max_diff(lu, ref), 0.0);
}

TEST(Tslu, NanPanelFlaggedWithoutFallback) {
  Matrix a = random_matrix(40, 6, 25);
  a(7, 2) = std::numeric_limits<double>::quiet_NaN();
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = 4;
  HealthReport health;
  (void)tslu_factor(a.view(), ipiv, opts, &health);
  EXPECT_TRUE(health.nan_detected);
  EXPECT_EQ(health.fallback_panels, 0);
}

TEST(Tslu, HealthyPanelRecordsGrowthAndNoFallback) {
  Matrix a = random_matrix(64, 8, 27);
  PivotVector ipiv;
  HealthReport health;
  TsluOptions opts;
  opts.tr = 4;
  EXPECT_EQ(tslu_factor(a.view(), ipiv, opts, &health), 0);
  EXPECT_FALSE(health.degraded());
  EXPECT_GT(health.max_growth, 0.0);
}

TEST(Tslu, WideMatrixThrows) {
  Matrix a = random_matrix(4, 8, 23);
  PivotVector ipiv;
  EXPECT_THROW(tslu_factor(a.view(), ipiv), std::invalid_argument);
}

TEST(Tslu, PivotRowsAreRowsOfOriginal) {
  // U's top row must be a row of the original panel (tournament returns
  // original rows, not eliminated values).
  Matrix a = random_matrix(60, 8, 29);
  Matrix lu = a;
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = 4;
  tslu_factor(lu.view(), ipiv, opts);
  // Row 0 of U = row ipiv[0] of A (first pivot row, unchanged by
  // elimination).
  for (idx j = 0; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(lu(0, j), a(ipiv[0], j));
  }
}


TEST(ReductionSchedule, HybridGroupsThenBinary) {
  // 8 leaves, group 4: two flat steps (0..3), (4..7), then binary (0,4).
  auto s = reduction_schedule(8, ReductionTree::Hybrid, 4);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].sources, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s[1].sources, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(s[2].sources, (std::vector<int>{0, 4}));
  EXPECT_EQ(s[2].level, 2);
}

TEST(ReductionSchedule, HybridRaggedGroups) {
  // 7 leaves, group 3: flat (0,1,2), (3,4,5), single (6) skipped, binary
  // over roots {0,3,6}: (0,3), (0,6).
  auto s = reduction_schedule(7, ReductionTree::Hybrid, 3);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0].sources, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(s[1].sources, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(s[2].sources, (std::vector<int>{0, 3}));
  EXPECT_EQ(s[3].sources, (std::vector<int>{0, 6}));
}

TEST(Tslu, HybridTreeResidualSmall) {
  Matrix a = random_matrix(640, 32, 222);
  Matrix lu = a;
  PivotVector ipiv;
  TsluOptions opts;
  opts.tr = 8;
  opts.tree = ReductionTree::Hybrid;
  EXPECT_EQ(tslu_factor(lu.view(), ipiv, opts), 0);
  EXPECT_LT(lapack::lu_residual(a, lu, ipiv), kResidualThreshold);
}

}  // namespace
}  // namespace camult::core
