// Tests for the dynamic task runtime: dependency ordering, priorities,
// inline mode, dependency inference, tracing, and a multithreaded stress
// test.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/dep_tracker.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/trace.hpp"
#include "runtime/trace_io.hpp"

namespace camult::rt {
namespace {

TEST(TaskGraph, RunsSingleTask) {
  TaskGraph g({2, true});
  std::atomic<int> x{0};
  g.submit({}, {}, [&] { x = 42; });
  g.wait();
  EXPECT_EQ(x, 42);
}

TEST(TaskGraph, RespectsDependencyChain) {
  TaskGraph g({4, true});
  std::vector<int> order;
  std::mutex mu;
  auto log = [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(v);
  };
  TaskId a = g.submit({}, {}, [&] { log(1); });
  TaskId b = g.submit({a}, {}, [&] { log(2); });
  g.submit({b}, {}, [&] { log(3); });
  g.wait();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TaskGraph, DiamondDependency) {
  TaskGraph g({4, true});
  std::atomic<int> stage{0};
  TaskId top = g.submit({}, {}, [&] { stage = 1; });
  std::atomic<bool> left_saw_top{false}, right_saw_top{false};
  TaskId l = g.submit({top}, {}, [&] { left_saw_top = (stage == 1); });
  TaskId r = g.submit({top}, {}, [&] { right_saw_top = (stage == 1); });
  std::atomic<bool> bottom_ok{false};
  g.submit({l, r}, {}, [&] { bottom_ok = left_saw_top && right_saw_top; });
  g.wait();
  EXPECT_TRUE(bottom_ok);
}

TEST(TaskGraph, FinishedDependencyIsSkipped) {
  TaskGraph g({1, true});
  TaskId a = g.submit({}, {}, [] {});
  g.wait();
  std::atomic<bool> ran{false};
  g.submit({a}, {}, [&] { ran = true; });
  g.wait();
  EXPECT_TRUE(ran);
}

TEST(TaskGraph, KNoTaskDependencyIgnored) {
  TaskGraph g({1, true});
  std::atomic<bool> ran{false};
  g.submit({kNoTask}, {}, [&] { ran = true; });
  g.wait();
  EXPECT_TRUE(ran);
}

TEST(TaskGraph, InlineModeExecutesEagerly) {
  TaskGraph g({0, true});
  int x = 0;
  g.submit({}, {}, [&] { x = 1; });
  EXPECT_EQ(x, 1);  // already ran, no wait needed
  TaskId a = g.submit({}, {}, [&] { x = 2; });
  g.submit({a}, {}, [&] { x = 3; });
  g.wait();
  EXPECT_EQ(x, 3);
}

TEST(TaskGraph, InlineModeNonTopologicalSubmitThrowsBeforeMutating) {
  // Inline mode requires topological submission order. The only way to
  // violate it is submitting from inside a running task (the task itself
  // is not finished yet). The rejection must happen BEFORE any state is
  // mutated: no phantom task, no stray edges, and the graph stays usable.
  TaskGraph g({0, true});
  bool threw = false;
  TaskId self = kNoTask;
  g.submit({}, {}, [&] {
    // `self` is assigned after submit() returns, so depend on the id this
    // task is about to get: store_.size() at submission time, i.e. 0.
    try {
      g.submit({static_cast<TaskId>(0)}, {}, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  (void)self;
  EXPECT_TRUE(threw);
  // The rejected submission left nothing behind...
  EXPECT_EQ(g.trace().size(), 1u);
  EXPECT_TRUE(g.edges().empty());
  // ...and the graph still works: wait() succeeds and new submissions run.
  EXPECT_NO_THROW(g.wait());
  int after = 0;
  g.submit({}, {}, [&] { after = 1; });
  g.wait();
  EXPECT_EQ(after, 1);
  EXPECT_EQ(g.trace().size(), 2u);
}

TEST(TaskGraph, InlineModeLongChainNoStackOverflow) {
  TaskGraph g({0, false});
  int counter = 0;
  TaskId prev = kNoTask;
  for (int i = 0; i < 100000; ++i) {
    prev = g.submit(prev == kNoTask ? std::vector<TaskId>{}
                                    : std::vector<TaskId>{prev},
                    {}, [&] { ++counter; });
  }
  g.wait();
  EXPECT_EQ(counter, 100000);
}

TEST(TaskGraph, PriorityOrderWithSingleThread) {
  // With one worker and all tasks ready, execution must follow priority.
  TaskGraph g({0, true});  // inline mode is strictly submission-ordered,
                           // so use a gate pattern with 1 thread instead.
  (void)g;

  TaskGraph g1({1, true});
  std::vector<int> order;
  std::mutex mu;
  // Block the worker with a gate task so the queue fills up.
  std::atomic<bool> gate{false};
  g1.submit({}, {}, [&] {
    while (!gate) std::this_thread::yield();
  });
  auto log = [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(v);
  };
  TaskOptions low;
  low.priority = 1;
  TaskOptions high;
  high.priority = 10;
  TaskOptions mid;
  mid.priority = 5;
  g1.submit({}, low, [&] { log(1); });
  g1.submit({}, high, [&] { log(10); });
  g1.submit({}, mid, [&] { log(5); });
  gate = true;
  g1.wait();
  EXPECT_EQ(order, (std::vector<int>{10, 5, 1}));
}

TEST(TaskGraph, TraceRecordsAllTasks) {
  TaskGraph g({2, true});
  TaskOptions o;
  o.kind = TaskKind::Update;
  o.iteration = 3;
  o.label = "s";
  TaskId a = g.submit({}, o, [] {});
  g.submit({a}, {}, [] {});
  g.wait();
  auto tr = g.trace();
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr[0].kind, TaskKind::Update);
  EXPECT_EQ(tr[0].iteration, 3);
  EXPECT_EQ(tr[0].label, "s");
  EXPECT_GE(tr[0].worker, 0);
  EXPECT_GE(tr[0].end_ns, tr[0].start_ns);
  // The dependent task cannot start before its predecessor ends.
  EXPECT_GE(tr[1].start_ns, tr[0].end_ns);
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, a);
}

TEST(TaskGraph, StressManyTasksManyThreads) {
  // Layered DAG: each layer depends on the previous; sum must be exact.
  TaskGraph g({4, false});
  const int layers = 50, width = 20;
  std::atomic<long> sum{0};
  std::vector<TaskId> prev, cur;
  for (int l = 0; l < layers; ++l) {
    cur.clear();
    for (int w = 0; w < width; ++w) {
      cur.push_back(g.submit(prev, {}, [&] { sum += 1; }));
    }
    prev = cur;
  }
  g.wait();
  EXPECT_EQ(sum, layers * width);
}

TEST(TaskGraph, ConcurrentWritersAreSerializedByDeps) {
  // Many read-modify-write tasks on a shared (non-atomic!) counter chained
  // by dependencies: any race would lose increments.
  TaskGraph g({4, false});
  long counter = 0;
  TaskId prev = kNoTask;
  for (int i = 0; i < 2000; ++i) {
    prev = g.submit(prev == kNoTask ? std::vector<TaskId>{}
                                    : std::vector<TaskId>{prev},
                    {}, [&] { ++counter; });
  }
  g.wait();
  EXPECT_EQ(counter, 2000);
}

TEST(DepTracker, ReadAfterWrite) {
  DepTracker t;
  auto d0 = t.depends(0, {{block_key(0, 0), AccessMode::Write}});
  EXPECT_TRUE(d0.empty());
  auto d1 = t.depends(1, {{block_key(0, 0), AccessMode::Read}});
  EXPECT_EQ(d1, (std::vector<TaskId>{0}));
}

TEST(DepTracker, WriteAfterReadCollectsAllReaders) {
  DepTracker t;
  t.depends(0, {{block_key(1, 1), AccessMode::Write}});
  t.depends(1, {{block_key(1, 1), AccessMode::Read}});
  t.depends(2, {{block_key(1, 1), AccessMode::Read}});
  auto d = t.depends(3, {{block_key(1, 1), AccessMode::Write}});
  // WAW on 0 plus WAR on 1 and 2.
  EXPECT_EQ(d, (std::vector<TaskId>{0, 1, 2}));
}

TEST(DepTracker, IndependentBlocksNoDeps) {
  DepTracker t;
  t.depends(0, {{block_key(0, 0), AccessMode::Write}});
  auto d = t.depends(1, {{block_key(0, 1), AccessMode::Write}});
  EXPECT_TRUE(d.empty());
}

TEST(DepTracker, ReadWriteActsAsBoth) {
  DepTracker t;
  t.depends(0, {{block_key(2, 2), AccessMode::Write}});
  auto d1 = t.depends(1, {{block_key(2, 2), AccessMode::ReadWrite}});
  EXPECT_EQ(d1, (std::vector<TaskId>{0}));
  auto d2 = t.depends(2, {{block_key(2, 2), AccessMode::Read}});
  EXPECT_EQ(d2, (std::vector<TaskId>{1}));
}

TEST(DepTracker, DeduplicatesDeps) {
  DepTracker t;
  t.depends(0, {{block_key(0, 0), AccessMode::Write},
                {block_key(0, 1), AccessMode::Write}});
  auto d = t.depends(1, {{block_key(0, 0), AccessMode::Read},
                         {block_key(0, 1), AccessMode::Read}});
  EXPECT_EQ(d, (std::vector<TaskId>{0}));
}

TEST(Trace, StatsComputeIdleFraction) {
  std::vector<TaskRecord> recs(2);
  recs[0].worker = 0;
  recs[0].start_ns = 0;
  recs[0].end_ns = 100;
  recs[1].worker = 1;
  recs[1].start_ns = 0;
  recs[1].end_ns = 50;
  auto st = compute_stats(recs, 2);
  EXPECT_EQ(st.makespan_ns, 100);
  EXPECT_EQ(st.busy_ns, 150);
  EXPECT_NEAR(st.idle_fraction, 0.25, 1e-12);
}

TEST(Trace, GanttRendersKindLetters) {
  std::vector<TaskRecord> recs(2);
  recs[0].worker = 0;
  recs[0].kind = TaskKind::Panel;
  recs[0].start_ns = 0;
  recs[0].end_ns = 50;
  recs[1].worker = 1;
  recs[1].kind = TaskKind::Update;
  recs[1].start_ns = 50;
  recs[1].end_ns = 100;
  std::string g = render_gantt(recs, 2, 10);
  EXPECT_NE(g.find("P"), std::string::npos);
  EXPECT_NE(g.find("S"), std::string::npos);
  EXPECT_NE(g.find("core 0"), std::string::npos);
  EXPECT_NE(g.find("core 1"), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  std::vector<TaskRecord> recs(1);
  recs[0].id = 0;
  recs[0].kind = TaskKind::LFactor;
  std::ostringstream os;
  write_trace_csv(os, recs);
  const std::string s = os.str();
  EXPECT_NE(s.find("id,kind"), std::string::npos);
  EXPECT_NE(s.find("L"), std::string::npos);
}

TEST(Trace, DotContainsNodesAndEdges) {
  std::vector<TaskRecord> recs(2);
  recs[0].id = 0;
  recs[1].id = 1;
  std::vector<TaskGraph::Edge> edges = {{0, 1}};
  std::ostringstream os;
  write_dot(os, recs, edges);
  const std::string s = os.str();
  EXPECT_NE(s.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(s.find("digraph"), std::string::npos);
}


TEST(WorkStealing, RespectsDependencies) {
  TaskGraph g({4, true, TaskGraph::Policy::WorkStealing});
  std::vector<int> order;
  std::mutex mu;
  auto log = [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(v);
  };
  TaskId a = g.submit({}, {}, [&] { log(1); });
  TaskId b = g.submit({a}, {}, [&] { log(2); });
  g.submit({b}, {}, [&] { log(3); });
  g.wait();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(WorkStealing, StressLayeredDag) {
  TaskGraph g({4, false, TaskGraph::Policy::WorkStealing});
  const int layers = 40, width = 25;
  std::atomic<long> sum{0};
  std::vector<TaskId> prev, cur;
  for (int l = 0; l < layers; ++l) {
    cur.clear();
    for (int w = 0; w < width; ++w) {
      cur.push_back(g.submit(prev, {}, [&] { sum += 1; }));
    }
    prev = cur;
  }
  g.wait();
  EXPECT_EQ(sum, layers * width);
}

TEST(WorkStealing, AllTasksExecuteOnWideGraph) {
  // Many independent tasks scattered round-robin; every deque must drain.
  TaskGraph g({3, true, TaskGraph::Policy::WorkStealing});
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    g.submit({}, {}, [&] { ++count; });
  }
  g.wait();
  EXPECT_EQ(count, 500);
  // Trace shows work spread across workers (not guaranteed perfectly even,
  // but all tasks ran somewhere valid).
  for (const auto& r : g.trace()) {
    EXPECT_GE(r.worker, 0);
    EXPECT_LT(r.worker, 3);
  }
}

TEST(WorkStealing, CaluProducesIdenticalFactors) {
  // Scheduling policy must not change the numerical result.
  // (Exercised through the core API; see test_core_calu for the rest.)
  SUCCEED();
}



TEST(TaskGraph, TaskExceptionRethrownAtWait) {
  TaskGraph g({2, true});
  std::atomic<bool> dependent_ran{false};
  TaskId bad = g.submit({}, {}, [] {
    throw std::runtime_error("kernel blew up");
  });
  g.submit({bad}, {}, [&] { dependent_ran = true; });
  EXPECT_THROW(g.wait(), std::runtime_error);
  // Fast-abort: the graph drained, but the failed task's dependent was
  // skipped, not executed — its input never materialized.
  EXPECT_FALSE(dependent_ran);
  EXPECT_EQ(g.stats().totals().tasks_skipped, 1);
}

TEST(TaskGraph, DependentsRunAfterErrorWithoutAbortOnError) {
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.abort_on_error = false;
  TaskGraph g(cfg);
  std::atomic<bool> dependent_ran{false};
  TaskId bad = g.submit({}, {}, [] {
    throw std::runtime_error("kernel blew up");
  });
  g.submit({bad}, {}, [&] { dependent_ran = true; });
  EXPECT_THROW(g.wait(), std::runtime_error);
  // Legacy drain-everything contract, kept behind abort_on_error = false.
  EXPECT_TRUE(dependent_ran);
}

TEST(TaskGraph, InlineModeExceptionRethrownAtWait) {
  TaskGraph g({0, true});
  bool ran_after = false;
  TaskId bad = g.submit({}, {}, [] { throw std::logic_error("boom"); });
  g.submit({bad}, {}, [&] { ran_after = true; });
  // Inline mode fast-aborts too: the body after the failure is skipped at
  // submit time.
  EXPECT_FALSE(ran_after);
  EXPECT_THROW(g.wait(), std::logic_error);
}

TEST(TaskGraph, FirstExceptionByIdWins) {
  TaskGraph g({1, true});
  std::atomic<bool> gate{false};
  g.submit({}, {}, [&] {
    while (!gate) std::this_thread::yield();
  });
  g.submit({}, {}, [] { throw std::runtime_error("first"); });
  g.submit({}, {}, [] { throw std::out_of_range("second"); });
  gate = true;
  try {
    g.wait();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  } catch (...) {
    FAIL() << "wrong exception type won";
  }
}

TEST(TraceIo, RoundTrip) {
  std::vector<TaskRecord> tasks(3);
  tasks[0].id = 0;
  tasks[0].kind = TaskKind::Panel;
  tasks[0].iteration = 2;
  tasks[0].priority = 7;
  tasks[0].worker = 1;
  tasks[0].start_ns = 100;
  tasks[0].end_ns = 250;
  tasks[0].label = "leaf 0 with spaces";
  tasks[1].id = 1;
  tasks[1].kind = TaskKind::Update;
  tasks[1].label = "";
  tasks[2].id = 2;
  tasks[2].kind = TaskKind::LFactor;
  tasks[2].label = "L3";
  std::vector<TaskGraph::Edge> edges = {{0, 1}, {1, 2}};

  std::stringstream ss;
  save_dag(ss, tasks, edges);
  RecordedDag dag = load_dag(ss);
  ASSERT_EQ(dag.tasks.size(), 3u);
  ASSERT_EQ(dag.edges.size(), 2u);
  EXPECT_EQ(dag.tasks[0].kind, TaskKind::Panel);
  EXPECT_EQ(dag.tasks[0].iteration, 2);
  EXPECT_EQ(dag.tasks[0].priority, 7);
  EXPECT_EQ(dag.tasks[0].start_ns, 100);
  EXPECT_EQ(dag.tasks[0].end_ns, 250);
  EXPECT_EQ(dag.tasks[0].label, "leaf 0 with spaces");
  EXPECT_EQ(dag.tasks[1].label, "");
  EXPECT_EQ(dag.tasks[2].kind, TaskKind::LFactor);
  EXPECT_EQ(dag.edges[1].to, 2);
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream ss("not a dag file");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

// A corrupt header must fail with a descriptive error rather than driving a
// multi-GB resize (huge count) or wrapping through size_t (negative count).
TEST(TraceIo, RejectsNegativeTaskCount) {
  std::stringstream ss("camult-dag v1\ntasks -5\nedges 0\n");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

TEST(TraceIo, RejectsImplausiblyHugeTaskCount) {
  std::stringstream ss("camult-dag v1\ntasks 999999999999\nedges 0\n");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

TEST(TraceIo, RejectsNegativeEdgeCount) {
  std::stringstream ss("camult-dag v1\ntasks 0\nedges -1\n");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

TEST(TraceIo, RejectsInvalidWorker) {
  std::stringstream ss(
      "camult-dag v1\ntasks 1\n0 P 0 0 -7 0 10 label\nedges 0\n");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

TEST(TraceIo, RejectsEndBeforeStart) {
  std::stringstream ss(
      "camult-dag v1\ntasks 1\n0 P 0 0 0 100 50 label\nedges 0\n");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfRangeEdge) {
  std::stringstream ss(
      "camult-dag v1\ntasks 2\n0 P 0 0 0 0 10 a\n1 S 0 0 0 10 20 b\n"
      "edges 1\n0 5\n");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedTaskRecord) {
  std::stringstream ss("camult-dag v1\ntasks 2\n0 P 0 0 0 0 10 only-one\n");
  EXPECT_THROW(load_dag(ss), std::runtime_error);
}

TEST(TraceIo, AcceptsSimulatedWorkerMinusOne) {
  std::stringstream ss(
      "camult-dag v1\ntasks 1\n0 P 0 0 -1 0 10 recorded\nedges 0\n");
  RecordedDag dag = load_dag(ss);
  ASSERT_EQ(dag.tasks.size(), 1u);
  EXPECT_EQ(dag.tasks[0].worker, -1);
}

// --- label escaping in the exporters ---------------------------------------

TEST(Trace, CsvEscapeQuotesSpecialFields) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Trace, CsvWriterEscapesLabels) {
  std::vector<TaskRecord> recs(1);
  recs[0].id = 0;
  recs[0].label = "leaf 0, \"quoted\"";
  std::ostringstream os;
  write_trace_csv(os, recs);
  EXPECT_NE(os.str().find("\"leaf 0, \"\"quoted\"\"\""), std::string::npos);
}

TEST(Trace, DotEscapeHandlesQuotesBackslashesNewlines) {
  EXPECT_EQ(dot_escape("plain"), "plain");
  EXPECT_EQ(dot_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(dot_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(dot_escape("a\nb"), "a\\nb");
  EXPECT_EQ(dot_escape("a\rb"), "ab");
}

TEST(Trace, DotWriterEscapesLabels) {
  std::vector<TaskRecord> recs(1);
  recs[0].id = 0;
  recs[0].label = "bad \"label\"";
  std::ostringstream os;
  write_dot(os, recs, {});
  const std::string s = os.str();
  EXPECT_NE(s.find("bad \\\"label\\\""), std::string::npos);
  // The raw unescaped quote sequence must not appear inside any DOT string.
  EXPECT_EQ(s.find(" \"label\""), std::string::npos);
}

// --- stats/gantt edge cases ------------------------------------------------

TEST(Trace, StatsEmptyTraceIsAllZero) {
  const TraceStats st = compute_stats({}, 4);
  EXPECT_EQ(st.makespan_ns, 0);
  EXPECT_EQ(st.busy_ns, 0);
  EXPECT_EQ(st.idle_fraction, 0.0);
}

TEST(Trace, StatsZeroDurationTasksGiveZeroMakespan) {
  std::vector<TaskRecord> recs(2);
  recs[0].worker = 0;
  recs[0].start_ns = 50;
  recs[0].end_ns = 50;
  recs[1].worker = -1;  // unknown worker still counts toward busy time
  recs[1].start_ns = 50;
  recs[1].end_ns = 50;
  const TraceStats st = compute_stats(recs, 2);
  EXPECT_EQ(st.makespan_ns, 0);
  EXPECT_EQ(st.busy_ns, 0);
  EXPECT_EQ(st.idle_fraction, 0.0);  // makespan 0 must not divide by zero
}

TEST(Trace, GanttEmptyTraceRendersNothing) {
  EXPECT_EQ(render_gantt({}, 4, 80), "");
  EXPECT_EQ(render_gantt({}, 0, 80), "");
}

TEST(Trace, GanttZeroDurationAndUnknownWorkerAreSafe) {
  std::vector<TaskRecord> recs(2);
  recs[0].worker = 0;
  recs[0].kind = TaskKind::Panel;
  recs[0].start_ns = 10;
  recs[0].end_ns = 10;  // zero duration
  recs[1].worker = -1;  // simulated record without a worker: skipped
  recs[1].start_ns = 0;
  recs[1].end_ns = 10;
  const std::string g = render_gantt(recs, 1, 20);
  EXPECT_NE(g.find("core 0"), std::string::npos);
}

}  // namespace
}  // namespace camult::rt
