// test_fault_inject.cpp — the failure-aware runtime: deterministic fault
// injection (FaultInjector), cooperative cancellation (CancelToken), the
// fast-abort drain contract, and the CALU/CAQR drivers under injected
// failures in both owned-thread and WorkerPool modes.
//
// The stress tests here are the PR's acceptance harness: hundreds of seeded
// factorizations at a 1% per-task throw rate must all drain cleanly, rethrow
// InjectedFault from the driver, and leave a shared pool reusable. They run
// under TSAN/ASAN via tools/run_tsan.sh like every other suite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "matrix/matrix.hpp"
#include "matrix/random.hpp"
#include "runtime/cancel.hpp"
#include "runtime/fault_inject.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"

namespace camult {
namespace {

using rt::FaultConfig;
using rt::FaultInjector;
using rt::InjectedFault;
using rt::TaskGraph;
using rt::TaskId;

// ---- FaultInjector: the decision oracle --------------------------------

TEST(FaultInjector, DecisionsAreDeterministic) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.throw_rate = 0.01;
  cfg.delay_rate = 0.05;
  cfg.wake_rate = 0.05;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  int throws = 0, delays = 0, wakes = 0;
  for (TaskId id = 0; id < 10000; ++id) {
    const auto d = a.decide(id);
    EXPECT_EQ(d, b.decide(id)) << "id " << id;
    EXPECT_EQ(d, a.decide(id)) << "repeat call diverged, id " << id;
    throws += d == FaultInjector::Action::Throw;
    delays += d == FaultInjector::Action::Delay;
    wakes += d == FaultInjector::Action::SpuriousWake;
  }
  // Rates are loose (hash-uniform over 10k ids): just demand each action
  // actually occurs and none dominates far beyond its probability.
  EXPECT_GT(throws, 0);
  EXPECT_LT(throws, 500);
  EXPECT_GT(delays, 0);
  EXPECT_GT(wakes, 0);

  FaultConfig other = cfg;
  other.seed = 43;
  FaultInjector c(other);
  bool differs = false;
  for (TaskId id = 0; id < 10000 && !differs; ++id) {
    differs = c.decide(id) != a.decide(id);
  }
  EXPECT_TRUE(differs) << "seed change did not change the decision pattern";
}

TEST(FaultInjector, RatesAreThresholdsAndTargetingWins) {
  FaultConfig all;
  all.throw_rate = 1.0;
  FaultInjector always(all);
  for (TaskId id = 0; id < 100; ++id) {
    EXPECT_EQ(always.decide(id), FaultInjector::Action::Throw);
  }

  FaultInjector never(FaultConfig{});
  for (TaskId id = 0; id < 100; ++id) {
    EXPECT_EQ(never.decide(id), FaultInjector::Action::None);
  }

  FaultConfig target;
  target.throw_on_task = 7;
  FaultInjector sniper(target);
  for (TaskId id = 0; id < 100; ++id) {
    EXPECT_EQ(sniper.decide(id), id == 7 ? FaultInjector::Action::Throw
                                         : FaultInjector::Action::None);
  }
  EXPECT_FALSE(sniper.before_task(6));
  try {
    sniper.before_task(7);
    FAIL() << "before_task(7) did not throw";
  } catch (const InjectedFault& f) {
    EXPECT_EQ(f.task(), 7);
  }
  EXPECT_EQ(sniper.injected_throws(), 1);
}

TEST(FaultInjector, FromEnvParsesAndFallsBackOnTypos) {
  ASSERT_EQ(std::getenv("CAMULT_FAULT_SEED"), nullptr)
      << "test binary must run without a global fault env";
  setenv("CAMULT_FAULT_SEED", "123", 1);
  setenv("CAMULT_FAULT_THROW_RATE", "0.25", 1);
  setenv("CAMULT_FAULT_DELAY_RATE", "0.5", 1);
  setenv("CAMULT_FAULT_DELAY_US", "7", 1);
  setenv("CAMULT_FAULT_WAKE_RATE", "0.125", 1);
  FaultConfig cfg = FaultConfig::from_env();
  EXPECT_EQ(cfg.seed, 123u);
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.25);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.5);
  EXPECT_EQ(cfg.delay_us, 7);
  EXPECT_DOUBLE_EQ(cfg.wake_rate, 0.125);

  // Typos must fall back to defaults, not take the process down.
  setenv("CAMULT_FAULT_THROW_RATE", "banana", 1);
  setenv("CAMULT_FAULT_DELAY_RATE", "1.5", 1);  // out of [0, 1]
  setenv("CAMULT_FAULT_DELAY_US", "-3", 1);
  cfg = FaultConfig::from_env();
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.0);
  EXPECT_EQ(cfg.delay_us, 100);

  // Unset seed disarms everything regardless of the other knobs.
  unsetenv("CAMULT_FAULT_SEED");
  cfg = FaultConfig::from_env();
  EXPECT_EQ(cfg.seed, 0u);
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.0);

  unsetenv("CAMULT_FAULT_THROW_RATE");
  unsetenv("CAMULT_FAULT_DELAY_RATE");
  unsetenv("CAMULT_FAULT_DELAY_US");
  unsetenv("CAMULT_FAULT_WAKE_RATE");
}

// ---- TaskGraph under injection -----------------------------------------

TEST(FaultedGraph, DrainsAndRethrowsAcrossSeedsAndPolicies) {
  for (const auto policy : {TaskGraph::Policy::CentralPriority,
                            TaskGraph::Policy::WorkStealing}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      FaultConfig fc;
      fc.seed = seed;
      fc.throw_rate = 0.05;
      FaultInjector inj(fc);
      TaskGraph::Config cfg;
      cfg.num_threads = 4;
      cfg.record_trace = false;
      cfg.policy = policy;
      cfg.fault = &inj;
      TaskGraph g(cfg);
      std::atomic<int> ran{0};
      const int n_tasks = 400;
      for (int i = 0; i < n_tasks; ++i) {
        g.submit({}, {}, [&ran] { ran.fetch_add(1); });
      }
      bool threw = false;
      try {
        g.wait();
      } catch (const InjectedFault&) {
        threw = true;
      }
      const auto totals = g.stats().totals();
      EXPECT_EQ(totals.tasks_executed + totals.tasks_skipped, n_tasks);
      EXPECT_EQ(totals.tasks_executed, ran.load() + inj.injected_throws());
      EXPECT_EQ(threw, inj.injected_throws() > 0);
      // 0.05 over 400 independent ids: some seed-dependent set of tasks
      // must have been hit (P(none) ~ 1e-9 per seed).
      EXPECT_TRUE(threw) << "policy " << static_cast<int>(policy) << " seed "
                         << seed;
    }
  }
}

TEST(FaultedGraph, TargetedFailureFastAbortsTheChain) {
  FaultConfig fc;
  fc.throw_on_task = 0;
  FaultInjector inj(fc);
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.fault = &inj;
  TaskGraph g(cfg);
  std::atomic<int> ran{0};
  TaskId prev = rt::kNoTask;
  for (int i = 0; i < 64; ++i) {
    std::vector<TaskId> deps;
    if (prev != rt::kNoTask) deps.push_back(prev);
    prev = g.submit(deps, {}, [&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(g.wait(), InjectedFault);
  const auto totals = g.stats().totals();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(totals.tasks_executed, 1);  // the throwing head
  EXPECT_EQ(totals.tasks_skipped, 63);
  EXPECT_TRUE(g.aborted());
}

TEST(FaultedGraph, DelaysAndSpuriousWakesAreHarmless) {
  FaultConfig fc;
  fc.seed = 7;
  fc.delay_rate = 0.2;
  fc.delay_us = 50;
  fc.wake_rate = 0.2;
  FaultInjector inj(fc);
  TaskGraph::Config cfg;
  cfg.num_threads = 4;
  cfg.record_trace = false;
  cfg.fault = &inj;
  TaskGraph g(cfg);
  std::atomic<long> sum{0};
  const int n_tasks = 200;
  for (int i = 0; i < n_tasks; ++i) {
    g.submit({}, {}, [&sum, i] { sum.fetch_add(i); });
  }
  g.wait();
  EXPECT_EQ(sum.load(), static_cast<long>(n_tasks) * (n_tasks - 1) / 2);
  EXPECT_EQ(g.stats().totals().tasks_executed, n_tasks);
  EXPECT_GT(inj.injected_delays(), 0);
  EXPECT_GT(inj.injected_wakes(), 0);
  EXPECT_EQ(inj.injected_throws(), 0);
}

// ---- CancelToken --------------------------------------------------------

TEST(Cancel, TokenSkipsRemainingWorkAndWaitThrows) {
  rt::CancelToken token;
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.cancel = token;
  TaskGraph g(cfg);
  std::atomic<int> ran{0};
  const TaskId head = g.submit({}, {}, [token] { token.request_cancel(); });
  for (int i = 0; i < 100; ++i) {
    g.submit({head}, {}, [&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(g.wait(), rt::CancelledError);
  EXPECT_EQ(ran.load(), 0);
  const auto totals = g.stats().totals();
  EXPECT_EQ(totals.tasks_executed, 1);
  EXPECT_EQ(totals.tasks_skipped, 100);
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancel, WorksInInlineMode) {
  rt::CancelToken token;
  TaskGraph::Config cfg;
  cfg.num_threads = 0;
  cfg.record_trace = false;
  cfg.cancel = token;
  TaskGraph g(cfg);
  bool after_ran = false;
  g.submit({}, {}, [token] { token.request_cancel(); });
  g.submit({}, {}, [&after_ran] { after_ran = true; });
  EXPECT_THROW(g.wait(), rt::CancelledError);
  EXPECT_FALSE(after_ran);
  EXPECT_EQ(g.stats().totals().tasks_skipped, 1);
}

TEST(Cancel, TaskErrorWinsOverCancellation) {
  rt::CancelToken token;
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.cancel = token;
  TaskGraph g(cfg);
  g.submit({}, {}, [token] {
    token.request_cancel();
    throw std::runtime_error("real failure");
  });
  try {
    g.wait();
    FAIL() << "wait() did not throw";
  } catch (const rt::CancelledError&) {
    FAIL() << "cancel masked the task error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "real failure");
  }
}

// ---- WorkerPool isolation ----------------------------------------------

TEST(FaultedPool, AbortedGraphDoesNotWedgeSiblingsOrPoisonThePool) {
  rt::WorkerPool pool({4});
  FaultConfig fc;
  fc.throw_on_task = 0;
  FaultInjector inj(fc);
  {
    TaskGraph::Config bad_cfg;
    bad_cfg.num_threads = 4;
    bad_cfg.record_trace = false;
    bad_cfg.pool = &pool;
    bad_cfg.fault = &inj;
    TaskGraph bad(bad_cfg);

    TaskGraph::Config good_cfg;
    good_cfg.num_threads = 4;
    good_cfg.record_trace = false;
    good_cfg.pool = &pool;
    TaskGraph good(good_cfg);

    std::atomic<int> bad_ran{0};
    TaskId prev = bad.submit({}, {}, [] {});
    for (int i = 0; i < 40; ++i) {
      prev = bad.submit({prev}, {}, [&bad_ran] { bad_ran.fetch_add(1); });
    }
    std::atomic<int> good_ran{0};
    for (int i = 0; i < 200; ++i) {
      good.submit({}, {}, [&good_ran] { good_ran.fetch_add(1); });
    }
    EXPECT_THROW(bad.wait(), InjectedFault);
    good.wait();  // the sibling must be unaffected by bad's abort
    EXPECT_EQ(good_ran.load(), 200);
    EXPECT_EQ(bad_ran.load(), 0);
  }
  // The pool outlives the aborted graph and still runs fresh work.
  TaskGraph::Config cfg;
  cfg.num_threads = 4;
  cfg.record_trace = false;
  cfg.pool = &pool;
  TaskGraph again(cfg);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    again.submit({}, {}, [&ran] { ran.fetch_add(1); });
  }
  again.wait();
  EXPECT_EQ(ran.load(), 100);
}

// ---- Driver-level stress: CALU / CAQR under a 1% throw rate -------------
//
// The acceptance sweep: >= 200 seeded runs split across CALU/CAQR and
// owned-thread/pool modes. Every run must either complete or rethrow
// InjectedFault from the driver after a clean drain; a shared pool must
// stay usable across (and after) the failures.

struct SweepCounts {
  int completed = 0;
  int faulted = 0;
};

template <typename Factor>
SweepCounts faulted_sweep(int runs, std::uint64_t seed0, Factor&& factor) {
  SweepCounts counts;
  for (int r = 0; r < runs; ++r) {
    FaultConfig fc;
    fc.seed = seed0 + static_cast<std::uint64_t>(r);
    fc.throw_rate = 0.01;
    FaultInjector inj(fc);
    Matrix a = random_matrix(64, 64, 1000 + r);
    try {
      factor(a.view(), &inj);
      ++counts.completed;
      EXPECT_EQ(inj.injected_throws(), 0);
    } catch (const InjectedFault&) {
      ++counts.faulted;
      EXPECT_GE(inj.injected_throws(), 1);
    }
  }
  return counts;
}

TEST(FaultedDrivers, SeededCaluSweepOwnedAndPooled) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  const SweepCounts owned =
      faulted_sweep(60, 100, [&](MatrixView a, FaultInjector* inj) {
        core::CaluOptions o = opts;
        o.fault = inj;
        (void)core::calu_factor(a, o);
      });
  EXPECT_EQ(owned.completed + owned.faulted, 60);
  EXPECT_GT(owned.faulted, 0);
  EXPECT_GT(owned.completed, 0);

  rt::WorkerPool pool({4});
  core::CaluOptions popts = opts;
  popts.pool = &pool;
  const SweepCounts pooled =
      faulted_sweep(60, 200, [&](MatrixView a, FaultInjector* inj) {
        core::CaluOptions o = popts;
        o.fault = inj;
        (void)core::calu_factor(a, o);
      });
  EXPECT_EQ(pooled.completed + pooled.faulted, 60);
  EXPECT_GT(pooled.faulted, 0);
  EXPECT_GT(pooled.completed, 0);

  // After dozens of aborted runs the pool still factors cleanly.
  Matrix a = random_matrix(64, 64, 4242);
  core::CaluResult res = core::calu_factor(a.view(), popts);
  EXPECT_EQ(res.info, 0);
}

TEST(FaultedDrivers, SeededCaqrSweepOwnedAndPooled) {
  core::CaqrOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  const SweepCounts owned =
      faulted_sweep(40, 300, [&](MatrixView a, FaultInjector* inj) {
        core::CaqrOptions o = opts;
        o.fault = inj;
        (void)core::caqr_factor(a, o);
      });
  EXPECT_EQ(owned.completed + owned.faulted, 40);
  EXPECT_GT(owned.faulted, 0);
  EXPECT_GT(owned.completed, 0);

  rt::WorkerPool pool({4});
  core::CaqrOptions popts = opts;
  popts.pool = &pool;
  const SweepCounts pooled =
      faulted_sweep(40, 400, [&](MatrixView a, FaultInjector* inj) {
        core::CaqrOptions o = popts;
        o.fault = inj;
        (void)core::caqr_factor(a, o);
      });
  EXPECT_EQ(pooled.completed + pooled.faulted, 40);
  EXPECT_GT(pooled.faulted, 0);
  EXPECT_GT(pooled.completed, 0);

  Matrix a = random_matrix(64, 64, 4243);
  core::CaqrResult res = core::caqr_factor(a.view(), popts);
  EXPECT_EQ(res.health.nan_detected, false);
}

TEST(FaultedDrivers, DelayAndWakeInjectionPreservesBitExactResults) {
  Matrix clean = random_matrix(96, 96, 555);
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  Matrix noisy = clean;
  const core::CaluResult ref = core::calu_factor(clean.view(), opts);

  FaultConfig fc;
  fc.seed = 99;
  fc.delay_rate = 0.15;
  fc.delay_us = 30;
  fc.wake_rate = 0.15;
  FaultInjector inj(fc);
  core::CaluOptions fopts = opts;
  fopts.fault = &inj;
  const core::CaluResult got = core::calu_factor(noisy.view(), fopts);

  EXPECT_EQ(got.info, ref.info);
  EXPECT_EQ(got.ipiv, ref.ipiv);
  EXPECT_EQ(test::max_diff(clean.view(), noisy.view()), 0.0);
  EXPECT_GT(inj.injected_delays() + inj.injected_wakes(), 0);
}

// ---- Fast-abort economics on a real DAG ---------------------------------
//
// Acceptance criterion: killing panel 0's first task of a 32-panel CALU
// must abort the run after executing < 20% of the full DAG. sched_out is
// the escape hatch that lets us observe the executed count even though
// calu_factor throws away its result.

TEST(FaultedDrivers, PanelZeroFailureSkipsMostOfTheDag) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;

  Matrix a = random_matrix(256, 256, 777);
  rt::SchedulerStats base_sched;
  core::CaluOptions base = opts;
  base.sched_out = &base_sched;
  (void)core::calu_factor(a.view(), base);
  const std::int64_t full = base_sched.totals().tasks_executed;
  ASSERT_GT(full, 100);  // 32 panels: the DAG is genuinely large

  FaultConfig fc;
  fc.throw_on_task = 0;  // panel 0's first tournament leaf
  FaultInjector inj(fc);
  Matrix b = random_matrix(256, 256, 777);
  rt::SchedulerStats fault_sched;
  core::CaluOptions fopts = opts;
  fopts.fault = &inj;
  fopts.sched_out = &fault_sched;
  EXPECT_THROW((void)core::calu_factor(b.view(), fopts), InjectedFault);

  const auto totals = fault_sched.totals();
  EXPECT_EQ(inj.injected_throws(), 1);
  EXPECT_GT(totals.tasks_skipped, 0);
  EXPECT_LT(totals.tasks_executed, full / 5)
      << "fast-abort executed " << totals.tasks_executed << " of " << full;
}

// ---- Mid-batch cancellation ---------------------------------------------
//
// The batch drivers translate a fired CancelToken into per-job results
// (CaluResult/CaqrResult::cancelled) instead of throwing: jobs collected
// before the fire keep their factorization, later jobs come back cancelled,
// and the pool must stay reusable. The single-problem drivers still throw
// (CancelTokenAbortsCalu above); these tests pin the batch contract.

TEST(BatchCancel, PreFiredTokenCancelsWholeCaluBatchInline) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 0;  // inline mode: one problem at a time
  opts.record_trace = false;
  opts.cancel.request_cancel();
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < 3; ++i) {
    ms.push_back(random_matrix(48, 48, 9000 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());
  const std::vector<core::CaluResult> res =
      core::calu_factor_batch(views, opts);
  ASSERT_EQ(res.size(), views.size());
  for (const core::CaluResult& r : res) {
    EXPECT_TRUE(r.cancelled);
    EXPECT_GT(r.sched.totals().tasks_skipped, 0);
    EXPECT_EQ(r.sched.totals().tasks_executed, 0);
  }
}

TEST(BatchCancel, PreFiredTokenCancelsWholeCaqrBatchInline) {
  core::CaqrOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 0;
  opts.record_trace = false;
  opts.cancel.request_cancel();
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < 3; ++i) {
    ms.push_back(random_matrix(64, 32, 9100 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());
  const std::vector<core::CaqrResult> res =
      core::caqr_factor_batch(views, opts);
  ASSERT_EQ(res.size(), views.size());
  for (const core::CaqrResult& r : res) {
    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.sched.totals().tasks_executed, 0);
  }
}

// Fire the token after the pool has fully drained (detached) the first k
// graphs of the batch. Collection is positional, so detachment order IS
// result order: results [0, k) must be completed factorizations, every
// result must exist (no wedge), and the pool must keep working afterwards.
TEST(BatchCancel, MidBatchCaluCancelKeepsCompletedPrefixAndDrains) {
  rt::WorkerPool pool({4});
  const std::int64_t detached0 = pool.stats().graphs_detached;
  const int n_jobs = 8;
  const int k = 2;

  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.pool = &pool;
  opts.num_threads = 4;
  opts.record_trace = false;
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < n_jobs; ++i) {
    ms.push_back(random_matrix(96, 96, 9200 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());

  std::vector<core::CaluResult> res;
  std::thread collector(
      [&] { res = core::calu_factor_batch(views, opts); });
  while (pool.stats().graphs_detached < detached0 + k) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  opts.cancel.request_cancel();
  collector.join();

  ASSERT_EQ(res.size(), static_cast<std::size_t>(n_jobs));
  int completed = 0;
  for (int i = 0; i < n_jobs; ++i) {
    if (!res[static_cast<std::size_t>(i)].cancelled) {
      ++completed;
      EXPECT_EQ(res[static_cast<std::size_t>(i)].info, 0) << "job " << i;
      EXPECT_FALSE(res[static_cast<std::size_t>(i)].ipiv.empty())
          << "job " << i;
    }
  }
  // The k graphs that detached before the fire were collected uncancelled.
  EXPECT_GE(completed, k);
  for (int i = 0; i < k; ++i) {
    EXPECT_FALSE(res[static_cast<std::size_t>(i)].cancelled) << "job " << i;
  }

  // No wedge: the pool still factors fresh work after the cancelled batch.
  Matrix again = random_matrix(64, 64, 9999);
  core::CaluOptions fresh = opts;
  fresh.cancel = rt::CancelToken();
  EXPECT_EQ(core::calu_factor(again.view(), fresh).info, 0);
}

TEST(BatchCancel, MidBatchCaqrCancelKeepsCompletedPrefixAndDrains) {
  rt::WorkerPool pool({4});
  const std::int64_t detached0 = pool.stats().graphs_detached;
  const int n_jobs = 6;
  const int k = 2;

  core::CaqrOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.pool = &pool;
  opts.num_threads = 4;
  opts.record_trace = false;
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < n_jobs; ++i) {
    ms.push_back(random_matrix(128, 48, 9300 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());

  std::vector<core::CaqrResult> res;
  std::thread collector(
      [&] { res = core::caqr_factor_batch(views, opts); });
  while (pool.stats().graphs_detached < detached0 + k) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  opts.cancel.request_cancel();
  collector.join();

  ASSERT_EQ(res.size(), static_cast<std::size_t>(n_jobs));
  for (int i = 0; i < k; ++i) {
    EXPECT_FALSE(res[static_cast<std::size_t>(i)].cancelled) << "job " << i;
    EXPECT_FALSE(res[static_cast<std::size_t>(i)].iterations.empty())
        << "job " << i;
  }

  Matrix again = random_matrix(64, 32, 9998);
  core::CaqrOptions fresh = opts;
  fresh.cancel = rt::CancelToken();
  EXPECT_FALSE(core::caqr_factor(again.view(), fresh).health.nan_detected);
}

TEST(FaultedDrivers, CancelTokenAbortsCalu) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  opts.cancel.request_cancel();  // cancelled before the run even starts
  rt::SchedulerStats sched;
  opts.sched_out = &sched;
  Matrix a = random_matrix(128, 128, 888);
  EXPECT_THROW((void)core::calu_factor(a.view(), opts), rt::CancelledError);
  EXPECT_EQ(sched.totals().tasks_executed, 0);
  EXPECT_GT(sched.totals().tasks_skipped, 0);
}

}  // namespace
}  // namespace camult
