// test_fault_inject.cpp — the failure-aware runtime: deterministic fault
// injection (FaultInjector), cooperative cancellation (CancelToken), the
// fast-abort drain contract, and the CALU/CAQR drivers under injected
// failures in both owned-thread and WorkerPool modes.
//
// The stress tests here are the PR's acceptance harness: hundreds of seeded
// factorizations at a 1% per-task throw rate must all drain cleanly, rethrow
// InjectedFault from the driver, and leave a shared pool reusable; a second
// 200-seed storm drives mixed throw/delay/hang injection through the job
// service with retry, stall watchdog and breakers armed (FaultStorm below),
// including a serial slice that must reproduce bit-for-bit per seed. They
// run under TSAN/ASAN via tools/run_tsan.sh like every other suite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "matrix/matrix.hpp"
#include "matrix/random.hpp"
#include "runtime/cancel.hpp"
#include "runtime/fault_inject.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"
#include "svc/service.hpp"

namespace camult {
namespace {

using rt::FaultConfig;
using rt::FaultInjector;
using rt::InjectedFault;
using rt::TaskGraph;
using rt::TaskId;

// ---- FaultInjector: the decision oracle --------------------------------

TEST(FaultInjector, DecisionsAreDeterministic) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.throw_rate = 0.01;
  cfg.delay_rate = 0.05;
  cfg.wake_rate = 0.05;
  FaultInjector a(cfg);
  FaultInjector b(cfg);
  int throws = 0, delays = 0, wakes = 0;
  for (TaskId id = 0; id < 10000; ++id) {
    const auto d = a.decide(id);
    EXPECT_EQ(d, b.decide(id)) << "id " << id;
    EXPECT_EQ(d, a.decide(id)) << "repeat call diverged, id " << id;
    throws += d == FaultInjector::Action::Throw;
    delays += d == FaultInjector::Action::Delay;
    wakes += d == FaultInjector::Action::SpuriousWake;
  }
  // Rates are loose (hash-uniform over 10k ids): just demand each action
  // actually occurs and none dominates far beyond its probability.
  EXPECT_GT(throws, 0);
  EXPECT_LT(throws, 500);
  EXPECT_GT(delays, 0);
  EXPECT_GT(wakes, 0);

  FaultConfig other = cfg;
  other.seed = 43;
  FaultInjector c(other);
  bool differs = false;
  for (TaskId id = 0; id < 10000 && !differs; ++id) {
    differs = c.decide(id) != a.decide(id);
  }
  EXPECT_TRUE(differs) << "seed change did not change the decision pattern";
}

TEST(FaultInjector, RatesAreThresholdsAndTargetingWins) {
  FaultConfig all;
  all.throw_rate = 1.0;
  FaultInjector always(all);
  for (TaskId id = 0; id < 100; ++id) {
    EXPECT_EQ(always.decide(id), FaultInjector::Action::Throw);
  }

  FaultInjector never(FaultConfig{});
  for (TaskId id = 0; id < 100; ++id) {
    EXPECT_EQ(never.decide(id), FaultInjector::Action::None);
  }

  FaultConfig target;
  target.throw_on_task = 7;
  FaultInjector sniper(target);
  for (TaskId id = 0; id < 100; ++id) {
    EXPECT_EQ(sniper.decide(id), id == 7 ? FaultInjector::Action::Throw
                                         : FaultInjector::Action::None);
  }
  EXPECT_FALSE(sniper.before_task(6));
  try {
    sniper.before_task(7);
    FAIL() << "before_task(7) did not throw";
  } catch (const InjectedFault& f) {
    EXPECT_EQ(f.task(), 7);
  }
  EXPECT_EQ(sniper.injected_throws(), 1);
}

TEST(FaultInjector, FromEnvParsesAndFallsBackOnTypos) {
  ASSERT_EQ(std::getenv("CAMULT_FAULT_SEED"), nullptr)
      << "test binary must run without a global fault env";
  setenv("CAMULT_FAULT_SEED", "123", 1);
  setenv("CAMULT_FAULT_THROW_RATE", "0.25", 1);
  setenv("CAMULT_FAULT_DELAY_RATE", "0.5", 1);
  setenv("CAMULT_FAULT_DELAY_US", "7", 1);
  setenv("CAMULT_FAULT_WAKE_RATE", "0.125", 1);
  FaultConfig cfg = FaultConfig::from_env();
  EXPECT_EQ(cfg.seed, 123u);
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.25);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.5);
  EXPECT_EQ(cfg.delay_us, 7);
  EXPECT_DOUBLE_EQ(cfg.wake_rate, 0.125);

  // Typos must fall back to defaults, not take the process down.
  setenv("CAMULT_FAULT_THROW_RATE", "banana", 1);
  setenv("CAMULT_FAULT_DELAY_RATE", "1.5", 1);  // out of [0, 1]
  setenv("CAMULT_FAULT_DELAY_US", "-3", 1);
  cfg = FaultConfig::from_env();
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.0);
  EXPECT_EQ(cfg.delay_us, 100);

  // Unset seed disarms everything regardless of the other knobs.
  unsetenv("CAMULT_FAULT_SEED");
  cfg = FaultConfig::from_env();
  EXPECT_EQ(cfg.seed, 0u);
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.0);

  unsetenv("CAMULT_FAULT_THROW_RATE");
  unsetenv("CAMULT_FAULT_DELAY_RATE");
  unsetenv("CAMULT_FAULT_DELAY_US");
  unsetenv("CAMULT_FAULT_WAKE_RATE");
}

// ---- Hang injection and retry salts --------------------------------------

TEST(FaultInjector, HangActionIsDecidedSleptAndCounted) {
  FaultConfig cfg;
  cfg.hang_on_task = 3;
  cfg.hang_ms = 20;
  FaultInjector inj(cfg);
  for (TaskId id = 0; id < 10; ++id) {
    EXPECT_EQ(inj.decide(id), id == 3 ? FaultInjector::Action::Hang
                                      : FaultInjector::Action::None);
  }
  // A hang ignores a fired CancelToken by design — that is the fault the
  // stall watchdog exists to detect.
  rt::CancelToken fired;
  fired.request_cancel();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(inj.before_task(3, 0, &fired));
  const auto slept = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(slept.count(), 15);
  EXPECT_EQ(inj.injected_hangs(), 1);
  EXPECT_EQ(inj.injected_delays(), 0);

  // Rate-based hangs share the single decision draw with the other actions.
  FaultConfig all;
  all.seed = 5;
  all.hang_rate = 1.0;
  all.hang_ms = 1;
  FaultInjector saturated(all);
  for (TaskId id = 0; id < 16; ++id) {
    EXPECT_EQ(saturated.decide(id), FaultInjector::Action::Hang);
  }
}

TEST(FaultInjector, SaltZeroMatchesUnsaltedAndDistinctSaltsDecorrelate) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.throw_rate = 0.2;
  cfg.delay_rate = 0.2;
  cfg.hang_rate = 0.1;
  FaultInjector inj(cfg);
  bool differs = false;
  for (TaskId id = 0; id < 512; ++id) {
    // Salt 0 IS the unsalted stream (the service's attempt-1 contract:
    // fault-free behaviour stays bitwise PR 7).
    EXPECT_EQ(inj.decide(id), inj.decide(id, 0)) << "id " << id;
    differs |= inj.decide(id, 1) != inj.decide(id, 0);
  }
  EXPECT_TRUE(differs) << "salt 1 replayed salt 0's decisions";

  // Snipers ignore the salt: a deterministic single-point failure must
  // stay deterministic across retries.
  FaultConfig t;
  t.throw_on_task = 5;
  FaultInjector sniper(t);
  EXPECT_EQ(sniper.decide(5, 99), FaultInjector::Action::Throw);
  FaultConfig h;
  h.hang_on_task = 6;
  FaultInjector hsniper(h);
  EXPECT_EQ(hsniper.decide(6, 99), FaultInjector::Action::Hang);
}

TEST(FaultInjector, InjectedDelayIsCancelAware) {
  FaultConfig cfg;
  cfg.seed = 1;
  cfg.delay_rate = 1.0;
  cfg.delay_us = 200000;  // 200 ms if it ran to completion
  FaultInjector inj(cfg);

  // Already-fired token: the delay is skipped outright.
  rt::CancelToken fired;
  fired.request_cancel();
  auto t0 = std::chrono::steady_clock::now();
  inj.before_task(0, 0, &fired);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_LT(ms, 50);

  // Fired mid-sleep: abandoned at the next ~0.5 ms slice boundary.
  rt::CancelToken token;
  std::thread firer([token]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.request_cancel();
  });
  t0 = std::chrono::steady_clock::now();
  inj.before_task(1, 0, &token);
  ms = std::chrono::duration_cast<std::chrono::milliseconds>(
           std::chrono::steady_clock::now() - t0)
           .count();
  firer.join();
  EXPECT_LT(ms, 100);
  EXPECT_EQ(inj.injected_delays(), 2);
}

TEST(FaultInjector, FromEnvNamesEachMalformedVariableOnStderr) {
  ASSERT_EQ(std::getenv("CAMULT_FAULT_SEED"), nullptr)
      << "test binary must run without a global fault env";
  setenv("CAMULT_FAULT_SEED", "7", 1);
  setenv("CAMULT_FAULT_THROW_RATE", "banana", 1);
  setenv("CAMULT_FAULT_HANG_RATE", "2.0", 1);  // out of [0, 1]
  setenv("CAMULT_FAULT_HANG_MS", "-5", 1);
  testing::internal::CaptureStderr();
  FaultConfig cfg = FaultConfig::from_env();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("CAMULT_FAULT_THROW_RATE"), std::string::npos) << err;
  EXPECT_NE(err.find("banana"), std::string::npos) << err;
  EXPECT_NE(err.find("CAMULT_FAULT_HANG_RATE"), std::string::npos) << err;
  EXPECT_NE(err.find("CAMULT_FAULT_HANG_MS"), std::string::npos) << err;
  // The typos fell back instead of disarming the whole config.
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.throw_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.hang_rate, 0.0);
  EXPECT_EQ(cfg.hang_ms, 100);

  // A clean environment parses silently.
  setenv("CAMULT_FAULT_THROW_RATE", "0.25", 1);
  setenv("CAMULT_FAULT_HANG_RATE", "0.5", 1);
  setenv("CAMULT_FAULT_HANG_MS", "12", 1);
  testing::internal::CaptureStderr();
  cfg = FaultConfig::from_env();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_DOUBLE_EQ(cfg.hang_rate, 0.5);
  EXPECT_EQ(cfg.hang_ms, 12);

  unsetenv("CAMULT_FAULT_SEED");
  unsetenv("CAMULT_FAULT_THROW_RATE");
  unsetenv("CAMULT_FAULT_HANG_RATE");
  unsetenv("CAMULT_FAULT_HANG_MS");
}

// ---- TaskGraph under injection -----------------------------------------

TEST(FaultedGraph, DrainsAndRethrowsAcrossSeedsAndPolicies) {
  for (const auto policy : {TaskGraph::Policy::CentralPriority,
                            TaskGraph::Policy::WorkStealing}) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      FaultConfig fc;
      fc.seed = seed;
      fc.throw_rate = 0.05;
      FaultInjector inj(fc);
      TaskGraph::Config cfg;
      cfg.num_threads = 4;
      cfg.record_trace = false;
      cfg.policy = policy;
      cfg.fault = &inj;
      TaskGraph g(cfg);
      std::atomic<int> ran{0};
      const int n_tasks = 400;
      for (int i = 0; i < n_tasks; ++i) {
        g.submit({}, {}, [&ran] { ran.fetch_add(1); });
      }
      bool threw = false;
      try {
        g.wait();
      } catch (const InjectedFault&) {
        threw = true;
      }
      const auto totals = g.stats().totals();
      EXPECT_EQ(totals.tasks_executed + totals.tasks_skipped, n_tasks);
      EXPECT_EQ(totals.tasks_executed, ran.load() + inj.injected_throws());
      EXPECT_EQ(threw, inj.injected_throws() > 0);
      // 0.05 over 400 independent ids: some seed-dependent set of tasks
      // must have been hit (P(none) ~ 1e-9 per seed).
      EXPECT_TRUE(threw) << "policy " << static_cast<int>(policy) << " seed "
                         << seed;
    }
  }
}

TEST(FaultedGraph, TargetedFailureFastAbortsTheChain) {
  FaultConfig fc;
  fc.throw_on_task = 0;
  FaultInjector inj(fc);
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.fault = &inj;
  TaskGraph g(cfg);
  std::atomic<int> ran{0};
  TaskId prev = rt::kNoTask;
  for (int i = 0; i < 64; ++i) {
    std::vector<TaskId> deps;
    if (prev != rt::kNoTask) deps.push_back(prev);
    prev = g.submit(deps, {}, [&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(g.wait(), InjectedFault);
  const auto totals = g.stats().totals();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(totals.tasks_executed, 1);  // the throwing head
  EXPECT_EQ(totals.tasks_skipped, 63);
  EXPECT_TRUE(g.aborted());
}

TEST(FaultedGraph, DelaysAndSpuriousWakesAreHarmless) {
  FaultConfig fc;
  fc.seed = 7;
  fc.delay_rate = 0.2;
  fc.delay_us = 50;
  fc.wake_rate = 0.2;
  FaultInjector inj(fc);
  TaskGraph::Config cfg;
  cfg.num_threads = 4;
  cfg.record_trace = false;
  cfg.fault = &inj;
  TaskGraph g(cfg);
  std::atomic<long> sum{0};
  const int n_tasks = 200;
  for (int i = 0; i < n_tasks; ++i) {
    g.submit({}, {}, [&sum, i] { sum.fetch_add(i); });
  }
  g.wait();
  EXPECT_EQ(sum.load(), static_cast<long>(n_tasks) * (n_tasks - 1) / 2);
  EXPECT_EQ(g.stats().totals().tasks_executed, n_tasks);
  EXPECT_GT(inj.injected_delays(), 0);
  EXPECT_GT(inj.injected_wakes(), 0);
  EXPECT_EQ(inj.injected_throws(), 0);
}

// ---- CancelToken --------------------------------------------------------

TEST(Cancel, TokenSkipsRemainingWorkAndWaitThrows) {
  rt::CancelToken token;
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.cancel = token;
  TaskGraph g(cfg);
  std::atomic<int> ran{0};
  const TaskId head = g.submit({}, {}, [token] { token.request_cancel(); });
  for (int i = 0; i < 100; ++i) {
    g.submit({head}, {}, [&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(g.wait(), rt::CancelledError);
  EXPECT_EQ(ran.load(), 0);
  const auto totals = g.stats().totals();
  EXPECT_EQ(totals.tasks_executed, 1);
  EXPECT_EQ(totals.tasks_skipped, 100);
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancel, WorksInInlineMode) {
  rt::CancelToken token;
  TaskGraph::Config cfg;
  cfg.num_threads = 0;
  cfg.record_trace = false;
  cfg.cancel = token;
  TaskGraph g(cfg);
  bool after_ran = false;
  g.submit({}, {}, [token] { token.request_cancel(); });
  g.submit({}, {}, [&after_ran] { after_ran = true; });
  EXPECT_THROW(g.wait(), rt::CancelledError);
  EXPECT_FALSE(after_ran);
  EXPECT_EQ(g.stats().totals().tasks_skipped, 1);
}

TEST(Cancel, TaskErrorWinsOverCancellation) {
  rt::CancelToken token;
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.cancel = token;
  TaskGraph g(cfg);
  g.submit({}, {}, [token] {
    token.request_cancel();
    throw std::runtime_error("real failure");
  });
  try {
    g.wait();
    FAIL() << "wait() did not throw";
  } catch (const rt::CancelledError&) {
    FAIL() << "cancel masked the task error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "real failure");
  }
}

// ---- WorkerPool isolation ----------------------------------------------

TEST(FaultedPool, AbortedGraphDoesNotWedgeSiblingsOrPoisonThePool) {
  rt::WorkerPool pool({4});
  FaultConfig fc;
  fc.throw_on_task = 0;
  FaultInjector inj(fc);
  {
    TaskGraph::Config bad_cfg;
    bad_cfg.num_threads = 4;
    bad_cfg.record_trace = false;
    bad_cfg.pool = &pool;
    bad_cfg.fault = &inj;
    TaskGraph bad(bad_cfg);

    TaskGraph::Config good_cfg;
    good_cfg.num_threads = 4;
    good_cfg.record_trace = false;
    good_cfg.pool = &pool;
    TaskGraph good(good_cfg);

    std::atomic<int> bad_ran{0};
    TaskId prev = bad.submit({}, {}, [] {});
    for (int i = 0; i < 40; ++i) {
      prev = bad.submit({prev}, {}, [&bad_ran] { bad_ran.fetch_add(1); });
    }
    std::atomic<int> good_ran{0};
    for (int i = 0; i < 200; ++i) {
      good.submit({}, {}, [&good_ran] { good_ran.fetch_add(1); });
    }
    EXPECT_THROW(bad.wait(), InjectedFault);
    good.wait();  // the sibling must be unaffected by bad's abort
    EXPECT_EQ(good_ran.load(), 200);
    EXPECT_EQ(bad_ran.load(), 0);
  }
  // The pool outlives the aborted graph and still runs fresh work.
  TaskGraph::Config cfg;
  cfg.num_threads = 4;
  cfg.record_trace = false;
  cfg.pool = &pool;
  TaskGraph again(cfg);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    again.submit({}, {}, [&ran] { ran.fetch_add(1); });
  }
  again.wait();
  EXPECT_EQ(ran.load(), 100);
}

// ---- Driver-level stress: CALU / CAQR under a 1% throw rate -------------
//
// The acceptance sweep: >= 200 seeded runs split across CALU/CAQR and
// owned-thread/pool modes. Every run must either complete or rethrow
// InjectedFault from the driver after a clean drain; a shared pool must
// stay usable across (and after) the failures.

struct SweepCounts {
  int completed = 0;
  int faulted = 0;
};

template <typename Factor>
SweepCounts faulted_sweep(int runs, std::uint64_t seed0, Factor&& factor) {
  SweepCounts counts;
  for (int r = 0; r < runs; ++r) {
    FaultConfig fc;
    fc.seed = seed0 + static_cast<std::uint64_t>(r);
    fc.throw_rate = 0.01;
    FaultInjector inj(fc);
    Matrix a = random_matrix(64, 64, 1000 + r);
    try {
      factor(a.view(), &inj);
      ++counts.completed;
      EXPECT_EQ(inj.injected_throws(), 0);
    } catch (const InjectedFault&) {
      ++counts.faulted;
      EXPECT_GE(inj.injected_throws(), 1);
    }
  }
  return counts;
}

TEST(FaultedDrivers, SeededCaluSweepOwnedAndPooled) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  const SweepCounts owned =
      faulted_sweep(60, 100, [&](MatrixView a, FaultInjector* inj) {
        core::CaluOptions o = opts;
        o.fault = inj;
        (void)core::calu_factor(a, o);
      });
  EXPECT_EQ(owned.completed + owned.faulted, 60);
  EXPECT_GT(owned.faulted, 0);
  EXPECT_GT(owned.completed, 0);

  rt::WorkerPool pool({4});
  core::CaluOptions popts = opts;
  popts.pool = &pool;
  const SweepCounts pooled =
      faulted_sweep(60, 200, [&](MatrixView a, FaultInjector* inj) {
        core::CaluOptions o = popts;
        o.fault = inj;
        (void)core::calu_factor(a, o);
      });
  EXPECT_EQ(pooled.completed + pooled.faulted, 60);
  EXPECT_GT(pooled.faulted, 0);
  EXPECT_GT(pooled.completed, 0);

  // After dozens of aborted runs the pool still factors cleanly.
  Matrix a = random_matrix(64, 64, 4242);
  core::CaluResult res = core::calu_factor(a.view(), popts);
  EXPECT_EQ(res.info, 0);
}

TEST(FaultedDrivers, SeededCaqrSweepOwnedAndPooled) {
  core::CaqrOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  const SweepCounts owned =
      faulted_sweep(40, 300, [&](MatrixView a, FaultInjector* inj) {
        core::CaqrOptions o = opts;
        o.fault = inj;
        (void)core::caqr_factor(a, o);
      });
  EXPECT_EQ(owned.completed + owned.faulted, 40);
  EXPECT_GT(owned.faulted, 0);
  EXPECT_GT(owned.completed, 0);

  rt::WorkerPool pool({4});
  core::CaqrOptions popts = opts;
  popts.pool = &pool;
  const SweepCounts pooled =
      faulted_sweep(40, 400, [&](MatrixView a, FaultInjector* inj) {
        core::CaqrOptions o = popts;
        o.fault = inj;
        (void)core::caqr_factor(a, o);
      });
  EXPECT_EQ(pooled.completed + pooled.faulted, 40);
  EXPECT_GT(pooled.faulted, 0);
  EXPECT_GT(pooled.completed, 0);

  Matrix a = random_matrix(64, 64, 4243);
  core::CaqrResult res = core::caqr_factor(a.view(), popts);
  EXPECT_EQ(res.health.nan_detected, false);
}

TEST(FaultedDrivers, DelayAndWakeInjectionPreservesBitExactResults) {
  Matrix clean = random_matrix(96, 96, 555);
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  Matrix noisy = clean;
  const core::CaluResult ref = core::calu_factor(clean.view(), opts);

  FaultConfig fc;
  fc.seed = 99;
  fc.delay_rate = 0.15;
  fc.delay_us = 30;
  fc.wake_rate = 0.15;
  FaultInjector inj(fc);
  core::CaluOptions fopts = opts;
  fopts.fault = &inj;
  const core::CaluResult got = core::calu_factor(noisy.view(), fopts);

  EXPECT_EQ(got.info, ref.info);
  EXPECT_EQ(got.ipiv, ref.ipiv);
  EXPECT_EQ(test::max_diff(clean.view(), noisy.view()), 0.0);
  EXPECT_GT(inj.injected_delays() + inj.injected_wakes(), 0);
}

// ---- Fast-abort economics on a real DAG ---------------------------------
//
// Acceptance criterion: killing panel 0's first task of a 32-panel CALU
// must abort the run after executing < 20% of the full DAG. sched_out is
// the escape hatch that lets us observe the executed count even though
// calu_factor throws away its result.

TEST(FaultedDrivers, PanelZeroFailureSkipsMostOfTheDag) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;

  Matrix a = random_matrix(256, 256, 777);
  rt::SchedulerStats base_sched;
  core::CaluOptions base = opts;
  base.sched_out = &base_sched;
  (void)core::calu_factor(a.view(), base);
  const std::int64_t full = base_sched.totals().tasks_executed;
  ASSERT_GT(full, 100);  // 32 panels: the DAG is genuinely large

  FaultConfig fc;
  fc.throw_on_task = 0;  // panel 0's first tournament leaf
  FaultInjector inj(fc);
  Matrix b = random_matrix(256, 256, 777);
  rt::SchedulerStats fault_sched;
  core::CaluOptions fopts = opts;
  fopts.fault = &inj;
  fopts.sched_out = &fault_sched;
  EXPECT_THROW((void)core::calu_factor(b.view(), fopts), InjectedFault);

  const auto totals = fault_sched.totals();
  EXPECT_EQ(inj.injected_throws(), 1);
  EXPECT_GT(totals.tasks_skipped, 0);
  EXPECT_LT(totals.tasks_executed, full / 5)
      << "fast-abort executed " << totals.tasks_executed << " of " << full;
}

// ---- Mid-batch cancellation ---------------------------------------------
//
// The batch drivers translate a fired CancelToken into per-job results
// (CaluResult/CaqrResult::cancelled) instead of throwing: jobs collected
// before the fire keep their factorization, later jobs come back cancelled,
// and the pool must stay reusable. The single-problem drivers still throw
// (CancelTokenAbortsCalu above); these tests pin the batch contract.

TEST(BatchCancel, PreFiredTokenCancelsWholeCaluBatchInline) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 0;  // inline mode: one problem at a time
  opts.record_trace = false;
  opts.cancel.request_cancel();
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < 3; ++i) {
    ms.push_back(random_matrix(48, 48, 9000 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());
  const std::vector<core::CaluResult> res =
      core::calu_factor_batch(views, opts);
  ASSERT_EQ(res.size(), views.size());
  for (const core::CaluResult& r : res) {
    EXPECT_TRUE(r.cancelled);
    EXPECT_GT(r.sched.totals().tasks_skipped, 0);
    EXPECT_EQ(r.sched.totals().tasks_executed, 0);
  }
}

TEST(BatchCancel, PreFiredTokenCancelsWholeCaqrBatchInline) {
  core::CaqrOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 0;
  opts.record_trace = false;
  opts.cancel.request_cancel();
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < 3; ++i) {
    ms.push_back(random_matrix(64, 32, 9100 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());
  const std::vector<core::CaqrResult> res =
      core::caqr_factor_batch(views, opts);
  ASSERT_EQ(res.size(), views.size());
  for (const core::CaqrResult& r : res) {
    EXPECT_TRUE(r.cancelled);
    EXPECT_EQ(r.sched.totals().tasks_executed, 0);
  }
}

// Fire the token after the pool has fully drained (detached) the first k
// graphs of the batch. Collection is positional, so detachment order IS
// result order: results [0, k) must be completed factorizations, every
// result must exist (no wedge), and the pool must keep working afterwards.
TEST(BatchCancel, MidBatchCaluCancelKeepsCompletedPrefixAndDrains) {
  rt::WorkerPool pool({4});
  const std::int64_t detached0 = pool.stats().graphs_detached;
  const int n_jobs = 8;
  const int k = 2;

  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.pool = &pool;
  opts.num_threads = 4;
  opts.record_trace = false;
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < n_jobs; ++i) {
    ms.push_back(random_matrix(96, 96, 9200 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());

  std::vector<core::CaluResult> res;
  std::thread collector(
      [&] { res = core::calu_factor_batch(views, opts); });
  while (pool.stats().graphs_detached < detached0 + k) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  opts.cancel.request_cancel();
  collector.join();

  ASSERT_EQ(res.size(), static_cast<std::size_t>(n_jobs));
  int completed = 0;
  for (int i = 0; i < n_jobs; ++i) {
    if (!res[static_cast<std::size_t>(i)].cancelled) {
      ++completed;
      EXPECT_EQ(res[static_cast<std::size_t>(i)].info, 0) << "job " << i;
      EXPECT_FALSE(res[static_cast<std::size_t>(i)].ipiv.empty())
          << "job " << i;
    }
  }
  // The k graphs that detached before the fire were collected uncancelled.
  EXPECT_GE(completed, k);
  for (int i = 0; i < k; ++i) {
    EXPECT_FALSE(res[static_cast<std::size_t>(i)].cancelled) << "job " << i;
  }

  // No wedge: the pool still factors fresh work after the cancelled batch.
  Matrix again = random_matrix(64, 64, 9999);
  core::CaluOptions fresh = opts;
  fresh.cancel = rt::CancelToken();
  EXPECT_EQ(core::calu_factor(again.view(), fresh).info, 0);
}

TEST(BatchCancel, MidBatchCaqrCancelKeepsCompletedPrefixAndDrains) {
  rt::WorkerPool pool({4});
  const std::int64_t detached0 = pool.stats().graphs_detached;
  const int n_jobs = 6;
  const int k = 2;

  core::CaqrOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.pool = &pool;
  opts.num_threads = 4;
  opts.record_trace = false;
  std::vector<Matrix> ms;
  std::vector<MatrixView> views;
  for (int i = 0; i < n_jobs; ++i) {
    ms.push_back(random_matrix(128, 48, 9300 + i));
  }
  for (Matrix& m : ms) views.push_back(m.view());

  std::vector<core::CaqrResult> res;
  std::thread collector(
      [&] { res = core::caqr_factor_batch(views, opts); });
  while (pool.stats().graphs_detached < detached0 + k) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  opts.cancel.request_cancel();
  collector.join();

  ASSERT_EQ(res.size(), static_cast<std::size_t>(n_jobs));
  for (int i = 0; i < k; ++i) {
    EXPECT_FALSE(res[static_cast<std::size_t>(i)].cancelled) << "job " << i;
    EXPECT_FALSE(res[static_cast<std::size_t>(i)].iterations.empty())
        << "job " << i;
  }

  Matrix again = random_matrix(64, 32, 9998);
  core::CaqrOptions fresh = opts;
  fresh.cancel = rt::CancelToken();
  EXPECT_FALSE(core::caqr_factor(again.view(), fresh).health.nan_detected);
}

// Regression for the cancel-aware delay path at DAG scale: a cancelled
// graph whose every task would sleep 100 ms must drain in a fraction of
// the 3.2 s the delays would cost uncancelled — tasks not yet started are
// skipped, and in-flight delays abandon at the next ~0.5 ms slice.
TEST(FaultedGraph, CancelledDagWithSaturatedDelaysDrainsFast) {
  FaultConfig fc;
  fc.seed = 3;
  fc.delay_rate = 1.0;
  fc.delay_us = 100000;
  FaultInjector inj(fc);
  rt::CancelToken token;
  TaskGraph::Config cfg;
  cfg.num_threads = 2;
  cfg.record_trace = false;
  cfg.fault = &inj;
  cfg.cancel = token;
  TaskGraph g(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  g.submit({}, {}, [token] { token.request_cancel(); });
  for (int i = 0; i < 64; ++i) {
    g.submit({}, {}, [] {});
  }
  EXPECT_THROW(g.wait(), rt::CancelledError);
  const auto wall = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  const auto totals = g.stats().totals();
  EXPECT_EQ(totals.tasks_executed + totals.tasks_skipped, 65);
  EXPECT_GT(totals.tasks_skipped, 0);
  EXPECT_LT(wall.count(), 1500)
      << "injected delays out-slept the cancellation";
}

TEST(FaultedDrivers, CancelTokenAbortsCalu) {
  core::CaluOptions opts;
  opts.b = 8;
  opts.tr = 2;
  opts.num_threads = 4;
  opts.record_trace = false;
  opts.cancel.request_cancel();  // cancelled before the run even starts
  rt::SchedulerStats sched;
  opts.sched_out = &sched;
  Matrix a = random_matrix(128, 128, 888);
  EXPECT_THROW((void)core::calu_factor(a.view(), opts), rt::CancelledError);
  EXPECT_EQ(sched.totals().tasks_executed, 0);
  EXPECT_GT(sched.totals().tasks_skipped, 0);
}

// ---- Service-level fault storm ------------------------------------------
//
// The self-healing acceptance sweep: 200 seeded storms through the job
// service with mixed throw/delay/hang injection (1–5% rates), retry, stall
// watchdog and per-tenant breakers all armed, jobs spread over both kinds,
// all three QoS classes and two tenants. Every storm must drain — every
// handle terminal, nothing queued, running, or parked in retry backoff —
// and the pool must survive all 200. A serial-dispatch slice is then
// re-run to pin determinism: per-job (status, attempts, backoff) and the
// retry/stall/breaker counters must reproduce bit-for-bit given the seed.

struct StormResult {
  std::vector<svc::JobStatus> status;
  std::vector<int> attempts;
  std::vector<double> backoff_ms;
  std::int64_t retries = 0;
  std::int64_t stalls = 0;
  std::int64_t breaker_opens = 0;
};

StormResult run_storm(rt::WorkerPool& pool, std::uint64_t seed,
                      int max_inflight, bool paced, int hang_ms,
                      int stall_ms) {
  FaultConfig fc;
  fc.seed = rt::splitmix64(seed * 0x9E3779B97F4A7C15ull + 1);
  fc.throw_rate = 0.02;
  fc.delay_rate = 0.05;
  fc.delay_us = 200;
  fc.hang_rate = 0.01;
  fc.hang_ms = hang_ms;
  FaultInjector inj(fc);

  svc::ServiceConfig cfg;
  cfg.pool = &pool;
  cfg.max_inflight = max_inflight;
  cfg.record_trace = false;
  cfg.fault = &inj;
  cfg.retry.max_attempts = 2;
  cfg.retry.base = std::chrono::milliseconds(1);
  cfg.retry.cap = std::chrono::milliseconds(2);
  cfg.retry.jitter_seed = seed;
  cfg.breaker.enabled = true;
  cfg.breaker.window = 4;
  cfg.breaker.min_samples = 2;
  cfg.breaker.failure_threshold = 0.5;
  cfg.breaker.open_for = std::chrono::milliseconds(5);
  cfg.stall_timeout = std::chrono::milliseconds(stall_ms);
  svc::Service service(cfg);

  const int n_jobs = 6;
  std::vector<Matrix> mats;
  std::vector<svc::JobHandle> handles;
  mats.reserve(n_jobs);
  for (int i = 0; i < n_jobs; ++i) {
    mats.push_back(random_matrix(
        32, 32, static_cast<unsigned>(seed * 100 + i)));
    svc::JobRequest req;
    req.kind = i % 2 == 0 ? svc::JobKind::CaluFactor
                          : svc::JobKind::CaqrFactor;
    req.a = mats.back().view();
    req.b = 8;
    req.tr = 2;
    req.qos = static_cast<svc::QosClass>(i % 3);
    req.tenant = i % 2 == 0 ? "storm-a" : "storm-b";
    handles.push_back(service.submit(req).handle);
    // Paced storms give earlier jobs time to finish so breakers can open
    // mid-stream and shed later arrivals; the determinism slice submits
    // everything up front so admission decisions cannot depend on timing.
    if (paced) std::this_thread::sleep_for(std::chrono::microseconds(500));
  }

  StormResult res;
  for (const svc::JobHandle& h : handles) {
    const svc::JobOutcome& out = h.wait();
    res.status.push_back(out.status);
    res.attempts.push_back(out.attempts);
    res.backoff_ms.push_back(out.backoff_ms);
  }
  // Handles turning terminal slightly precedes the runner releasing its
  // slot; drain() is the proper "nothing queued, running, or parked"
  // barrier to snapshot stats against.
  service.drain();
  const svc::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queued, 0u) << "seed " << seed;
  EXPECT_EQ(stats.inflight, 0) << "seed " << seed;
  EXPECT_EQ(stats.retry_pending, 0u) << "seed " << seed;
  for (const auto& [tenant, qs] : stats.per_tenant) {
    res.retries += qs.retries;
    res.stalls += qs.stalls_detected;
  }
  for (const auto& [tenant, bs] : stats.breakers) {
    res.breaker_opens += bs.opens;
  }
  return res;
}

TEST(FaultStorm, TwoHundredSeededStormsAllDrainThroughTheService) {
  rt::WorkerPool pool({2});
  std::int64_t total_retries = 0, total_stalls = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const StormResult res = run_storm(pool, seed, 2, /*paced=*/true,
                                      /*hang_ms=*/12, /*stall_ms=*/4);
    ASSERT_EQ(res.status.size(), 6u) << "seed " << seed;
    total_retries += res.retries;
    total_stalls += res.stalls;
  }
  // 1–5% rates over 200 storms: the sweep must actually have exercised the
  // machinery it claims to cover.
  EXPECT_GT(total_retries, 0);
  EXPECT_GT(total_stalls, 0);

  // 200 storms later the pool still factors cleanly.
  Matrix a = random_matrix(64, 64, 123456);
  core::CaluOptions opts;
  opts.b = 16;
  opts.tr = 2;
  opts.pool = &pool;
  opts.num_threads = pool.size();
  opts.record_trace = false;
  EXPECT_EQ(core::calu_factor(a.view(), opts).info, 0);
}

TEST(FaultStorm, SerialStormsReproduceBitForBitGivenTheSeed) {
  // One worker + one runner + up-front submission: dispatch order, fault
  // decisions, stall detections, the retry schedule and breaker
  // transitions are all functions of the seed. The hang/timeout margin is
  // wide here (60 ms hangs against a 20 ms timeout) so detection is
  // certain for every injected hang and scheduler-preemption jitter on a
  // loaded single-core host cannot manufacture a borderline extra stall.
  rt::WorkerPool pool({1});
  for (std::uint64_t seed = 3; seed < 24; seed += 6) {
    const StormResult first = run_storm(pool, seed, 1, /*paced=*/false,
                                        /*hang_ms=*/60, /*stall_ms=*/20);
    const StormResult again = run_storm(pool, seed, 1, /*paced=*/false,
                                        /*hang_ms=*/60, /*stall_ms=*/20);
    EXPECT_EQ(first.status, again.status) << "seed " << seed;
    EXPECT_EQ(first.attempts, again.attempts) << "seed " << seed;
    EXPECT_EQ(first.backoff_ms, again.backoff_ms) << "seed " << seed;
    EXPECT_EQ(first.retries, again.retries) << "seed " << seed;
    EXPECT_EQ(first.stalls, again.stalls) << "seed " << seed;
    EXPECT_EQ(first.breaker_opens, again.breaker_opens) << "seed " << seed;
  }
}

}  // namespace
}  // namespace camult
