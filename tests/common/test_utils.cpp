#include "common/test_utils.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "matrix/random.hpp"

namespace camult::test {

namespace {
double op_elem(ConstMatrixView a, blas::Trans t, idx i, idx j) {
  return t == blas::Trans::NoTrans ? a(i, j) : a(j, i);
}
}  // namespace

void reference_gemm(blas::Trans transa, blas::Trans transb, double alpha,
                    ConstMatrixView a, ConstMatrixView b, double beta,
                    MatrixView c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = (transa == blas::Trans::NoTrans) ? a.cols() : a.rows();
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      double s = 0.0;
      for (idx p = 0; p < k; ++p) {
        s += op_elem(a, transa, i, p) * op_elem(b, transb, p, j);
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

Matrix reference_triangle(ConstMatrixView a, blas::Uplo uplo,
                          blas::Diag diag) {
  const idx n = a.rows();
  Matrix t = Matrix::zeros(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      const bool in_tri = (uplo == blas::Uplo::Lower) ? (i >= j) : (i <= j);
      if (in_tri) t(i, j) = a(i, j);
    }
    if (diag == blas::Diag::Unit) t(j, j) = 1.0;
  }
  return t;
}

Matrix reference_trsm(blas::Side side, blas::Uplo uplo, blas::Trans trans,
                      blas::Diag diag, double alpha, ConstMatrixView a,
                      ConstMatrixView b) {
  Matrix t = reference_triangle(a, uplo, diag);
  // Explicit op(T).
  const idx n_tri = t.rows();
  Matrix op_t(n_tri, n_tri);
  for (idx j = 0; j < n_tri; ++j) {
    for (idx i = 0; i < n_tri; ++i) {
      op_t(i, j) = (trans == blas::Trans::NoTrans) ? t(i, j) : t(j, i);
    }
  }
  Matrix x = Matrix::from(b);
  for (idx j = 0; j < x.cols(); ++j) {
    for (idx i = 0; i < x.rows(); ++i) x(i, j) *= alpha;
  }
  if (side == blas::Side::Left) {
    // Solve op_t * X = alpha*B by Gaussian substitution column by column.
    // op_t is triangular (either orientation); detect orientation by uplo
    // and trans.
    const bool lower =
        (uplo == blas::Uplo::Lower) == (trans == blas::Trans::NoTrans);
    for (idx col = 0; col < x.cols(); ++col) {
      if (lower) {
        for (idx i = 0; i < n_tri; ++i) {
          double s = x(i, col);
          for (idx p = 0; p < i; ++p) s -= op_t(i, p) * x(p, col);
          x(i, col) = s / op_t(i, i);
        }
      } else {
        for (idx i = n_tri - 1; i >= 0; --i) {
          double s = x(i, col);
          for (idx p = i + 1; p < n_tri; ++p) s -= op_t(i, p) * x(p, col);
          x(i, col) = s / op_t(i, i);
        }
      }
    }
  } else {
    // X * op_t = alpha*B  <=>  op_t^T X^T = alpha*B^T.
    const bool lower_tr =
        (uplo == blas::Uplo::Lower) == (trans == blas::Trans::NoTrans);
    // op_t^T is upper when op_t is lower.
    const bool lower = !lower_tr;
    for (idx row = 0; row < x.rows(); ++row) {
      if (lower) {
        for (idx i = 0; i < n_tri; ++i) {
          double s = x(row, i);
          for (idx p = 0; p < i; ++p) s -= op_t(p, i) * x(row, p);
          x(row, i) = s / op_t(i, i);
        }
      } else {
        for (idx i = n_tri - 1; i >= 0; --i) {
          double s = x(row, i);
          for (idx p = i + 1; p < n_tri; ++p) s -= op_t(p, i) * x(row, p);
          x(row, i) = s / op_t(i, i);
        }
      }
    }
  }
  return x;
}

double max_diff(ConstMatrixView a, ConstMatrixView b) {
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::abs(a(i, j) - b(i, j)));
    }
  }
  return best;
}

::testing::AssertionResult matrices_near(ConstMatrixView a, ConstMatrixView b,
                                         double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      const double d = std::abs(a(i, j) - b(i, j));
      if (!(d <= tol)) {
        return ::testing::AssertionFailure()
               << "mismatch at (" << i << "," << j << "): " << a(i, j)
               << " vs " << b(i, j) << " (|diff| = " << d << ", tol = " << tol
               << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

Matrix near_singular_matrix(idx m, idx n, double eps_scale,
                            std::uint64_t seed) {
  Matrix a = random_matrix(m, n, seed);
  if (n < 2) return a;
  const Matrix w = random_matrix(n - 1, 1, seed + 1);
  const Matrix noise = random_matrix(m, 1, seed + 2);
  for (idx i = 0; i < m; ++i) {
    double s = 0.0;
    for (idx j = 0; j < n - 1; ++j) s += a(i, j) * w(j, 0);
    a(i, n - 1) = s + eps_scale * noise(i, 0);
  }
  return a;
}

Matrix duplicate_rows_matrix(idx m, idx n, std::uint64_t seed) {
  Matrix a = random_matrix(m, n, seed);
  for (idx i = 0; i + 1 < m; i += 2) {
    for (idx j = 0; j < n; ++j) a(i + 1, j) = a(i, j);
  }
  return a;
}

Matrix badly_scaled_matrix(idx m, idx n, int scale_pow, std::uint64_t seed) {
  Matrix a = random_matrix(m, n, seed);
  auto ramp = [scale_pow](idx i, idx count) {
    if (count <= 1) return 0;
    return -scale_pow +
           static_cast<int>((2.0 * scale_pow * static_cast<double>(i)) /
                            static_cast<double>(count - 1));
  };
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      a(i, j) = std::ldexp(a(i, j), ramp(i, m) + ramp(j, n));
    }
  }
  return a;
}

Matrix nan_seeded_matrix(idx m, idx n, std::uint64_t seed) {
  Matrix a = random_matrix(m, n, seed);
  const double q = std::numeric_limits<double>::quiet_NaN();
  a(0, 0) = q;
  a(m / 2, n / 2) = q;
  a(m - 1, n - 1) = q;
  return a;
}

Matrix inf_seeded_matrix(idx m, idx n, std::uint64_t seed) {
  Matrix a = random_matrix(m, n, seed);
  const double inf = std::numeric_limits<double>::infinity();
  a(0, 0) = inf;
  a(m / 2, n / 2) = -inf;
  a(m - 1, n - 1) = inf;
  return a;
}

Matrix zero_column_matrix(idx m, idx n, idx col, std::uint64_t seed) {
  Matrix a = random_matrix(m, n, seed);
  for (idx i = 0; i < m; ++i) a(i, col) = 0.0;
  return a;
}

std::vector<AdversarialCase> adversarial_cases(idx m, idx n,
                                               std::uint64_t seed) {
  std::vector<AdversarialCase> cases;
  if (m == n) {
    // Exact 2^(k-1) pivot growth; order <= 40 keeps every intermediate an
    // exactly representable integer, so residuals stay exact.
    cases.push_back({"wilkinson", gepp_growth_matrix(std::min<idx>(n, 40)),
                     false});
  }
  cases.push_back({"near_singular", near_singular_matrix(m, n, 1e-12, seed),
                   false});
  // Duplicate rows force pivot ties; a square matrix with duplicated rows
  // is exactly singular, a tall one generically keeps full column rank.
  cases.push_back({"duplicate_rows", duplicate_rows_matrix(m, n, seed + 10),
                   m == n});
  const idx rank = std::max<idx>(1, (std::min(m, n) * 3) / 4);
  cases.push_back({"rank_deficient",
                   random_rank_deficient_matrix(m, n, rank, seed + 20), true});
  cases.push_back({"badly_scaled", badly_scaled_matrix(m, n, 20, seed + 30),
                   false});
  return cases;
}

}  // namespace camult::test
