#include "common/test_utils.hpp"

#include <cmath>
#include <sstream>

namespace camult::test {

namespace {
double op_elem(ConstMatrixView a, blas::Trans t, idx i, idx j) {
  return t == blas::Trans::NoTrans ? a(i, j) : a(j, i);
}
}  // namespace

void reference_gemm(blas::Trans transa, blas::Trans transb, double alpha,
                    ConstMatrixView a, ConstMatrixView b, double beta,
                    MatrixView c) {
  const idx m = c.rows();
  const idx n = c.cols();
  const idx k = (transa == blas::Trans::NoTrans) ? a.cols() : a.rows();
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) {
      double s = 0.0;
      for (idx p = 0; p < k; ++p) {
        s += op_elem(a, transa, i, p) * op_elem(b, transb, p, j);
      }
      c(i, j) = alpha * s + beta * c(i, j);
    }
  }
}

Matrix reference_triangle(ConstMatrixView a, blas::Uplo uplo,
                          blas::Diag diag) {
  const idx n = a.rows();
  Matrix t = Matrix::zeros(n, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < n; ++i) {
      const bool in_tri = (uplo == blas::Uplo::Lower) ? (i >= j) : (i <= j);
      if (in_tri) t(i, j) = a(i, j);
    }
    if (diag == blas::Diag::Unit) t(j, j) = 1.0;
  }
  return t;
}

Matrix reference_trsm(blas::Side side, blas::Uplo uplo, blas::Trans trans,
                      blas::Diag diag, double alpha, ConstMatrixView a,
                      ConstMatrixView b) {
  Matrix t = reference_triangle(a, uplo, diag);
  // Explicit op(T).
  const idx n_tri = t.rows();
  Matrix op_t(n_tri, n_tri);
  for (idx j = 0; j < n_tri; ++j) {
    for (idx i = 0; i < n_tri; ++i) {
      op_t(i, j) = (trans == blas::Trans::NoTrans) ? t(i, j) : t(j, i);
    }
  }
  Matrix x = Matrix::from(b);
  for (idx j = 0; j < x.cols(); ++j) {
    for (idx i = 0; i < x.rows(); ++i) x(i, j) *= alpha;
  }
  if (side == blas::Side::Left) {
    // Solve op_t * X = alpha*B by Gaussian substitution column by column.
    // op_t is triangular (either orientation); detect orientation by uplo
    // and trans.
    const bool lower =
        (uplo == blas::Uplo::Lower) == (trans == blas::Trans::NoTrans);
    for (idx col = 0; col < x.cols(); ++col) {
      if (lower) {
        for (idx i = 0; i < n_tri; ++i) {
          double s = x(i, col);
          for (idx p = 0; p < i; ++p) s -= op_t(i, p) * x(p, col);
          x(i, col) = s / op_t(i, i);
        }
      } else {
        for (idx i = n_tri - 1; i >= 0; --i) {
          double s = x(i, col);
          for (idx p = i + 1; p < n_tri; ++p) s -= op_t(i, p) * x(p, col);
          x(i, col) = s / op_t(i, i);
        }
      }
    }
  } else {
    // X * op_t = alpha*B  <=>  op_t^T X^T = alpha*B^T.
    const bool lower_tr =
        (uplo == blas::Uplo::Lower) == (trans == blas::Trans::NoTrans);
    // op_t^T is upper when op_t is lower.
    const bool lower = !lower_tr;
    for (idx row = 0; row < x.rows(); ++row) {
      if (lower) {
        for (idx i = 0; i < n_tri; ++i) {
          double s = x(row, i);
          for (idx p = 0; p < i; ++p) s -= op_t(p, i) * x(row, p);
          x(row, i) = s / op_t(i, i);
        }
      } else {
        for (idx i = n_tri - 1; i >= 0; --i) {
          double s = x(row, i);
          for (idx p = i + 1; p < n_tri; ++p) s -= op_t(p, i) * x(row, p);
          x(row, i) = s / op_t(i, i);
        }
      }
    }
  }
  return x;
}

double max_diff(ConstMatrixView a, ConstMatrixView b) {
  double best = 0.0;
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      best = std::max(best, std::abs(a(i, j) - b(i, j)));
    }
  }
  return best;
}

::testing::AssertionResult matrices_near(ConstMatrixView a, ConstMatrixView b,
                                         double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  for (idx j = 0; j < a.cols(); ++j) {
    for (idx i = 0; i < a.rows(); ++i) {
      const double d = std::abs(a(i, j) - b(i, j));
      if (!(d <= tol)) {
        return ::testing::AssertionFailure()
               << "mismatch at (" << i << "," << j << "): " << a(i, j)
               << " vs " << b(i, j) << " (|diff| = " << d << ", tol = " << tol
               << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace camult::test
