// test_utils.hpp — shared helpers for the gtest suites: naive reference
// kernels and comparison utilities. Reference implementations are
// deliberately simple (triple loops) so they are obviously correct.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "blas/types.hpp"
#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"

namespace camult::test {

/// C = alpha * op(A) * op(B) + beta * C, naive triple loop.
void reference_gemm(blas::Trans transa, blas::Trans transb, double alpha,
                    ConstMatrixView a, ConstMatrixView b, double beta,
                    MatrixView c);

/// Dense triangular matrix from the referenced triangle of a.
Matrix reference_triangle(ConstMatrixView a, blas::Uplo uplo, blas::Diag diag);

/// Reference solve op(T) * X = B or X * op(T) = B via explicit triangle and
/// column-wise substitution.
Matrix reference_trsm(blas::Side side, blas::Uplo uplo, blas::Trans trans,
                      blas::Diag diag, double alpha, ConstMatrixView a,
                      ConstMatrixView b);

/// Maximum elementwise |a - b|.
double max_diff(ConstMatrixView a, ConstMatrixView b);

/// gtest assertion: matrices equal within tol (absolute, on max diff scaled
/// by max magnitude).
::testing::AssertionResult matrices_near(ConstMatrixView a, ConstMatrixView b,
                                         double tol);

/// Residual thresholds: scaled residuals from lapack/verify.hpp are measured
/// in units of (size * eps); anything below this is a pass.
inline constexpr double kResidualThreshold = 50.0;

}  // namespace camult::test
