// test_utils.hpp — shared helpers for the gtest suites: naive reference
// kernels and comparison utilities. Reference implementations are
// deliberately simple (triple loops) so they are obviously correct.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "blas/types.hpp"
#include "matrix/matrix.hpp"
#include "matrix/permutation.hpp"

namespace camult::test {

/// C = alpha * op(A) * op(B) + beta * C, naive triple loop.
void reference_gemm(blas::Trans transa, blas::Trans transb, double alpha,
                    ConstMatrixView a, ConstMatrixView b, double beta,
                    MatrixView c);

/// Dense triangular matrix from the referenced triangle of a.
Matrix reference_triangle(ConstMatrixView a, blas::Uplo uplo, blas::Diag diag);

/// Reference solve op(T) * X = B or X * op(T) = B via explicit triangle and
/// column-wise substitution.
Matrix reference_trsm(blas::Side side, blas::Uplo uplo, blas::Trans trans,
                      blas::Diag diag, double alpha, ConstMatrixView a,
                      ConstMatrixView b);

/// Maximum elementwise |a - b|.
double max_diff(ConstMatrixView a, ConstMatrixView b);

/// gtest assertion: matrices equal within tol (absolute, on max diff scaled
/// by max magnitude).
::testing::AssertionResult matrices_near(ConstMatrixView a, ConstMatrixView b,
                                         double tol);

/// Residual thresholds: scaled residuals from lapack/verify.hpp are measured
/// in units of (size * eps); anything below this is a pass.
inline constexpr double kResidualThreshold = 50.0;

// ---- Adversarial matrix ensembles --------------------------------------
//
// Inputs chosen to stress the numerics rather than the scheduling: pivot
// growth, pivot ties, (near-)singularity, and wide dynamic range. Used by
// test_adversarial.cpp to pin the CALU/CAQR backward-error bounds, and
// available to any suite that wants hostile inputs.

/// Nearly singular: the last column is a linear combination of the others
/// plus `eps_scale` * noise (exactly singular for eps_scale == 0).
Matrix near_singular_matrix(idx m, idx n, double eps_scale,
                            std::uint64_t seed);

/// Random matrix where consecutive row pairs are exact duplicates (pivot
/// ties everywhere; square versions are exactly singular).
Matrix duplicate_rows_matrix(idx m, idx n, std::uint64_t seed);

/// Random matrix scaled by geometric row and column scalings spanning
/// 2^[-scale_pow, +scale_pow].
Matrix badly_scaled_matrix(idx m, idx n, int scale_pow, std::uint64_t seed);

/// Random matrix with quiet NaNs planted at a few deterministic positions,
/// always including (0, 0) so the leading panel is poisoned.
Matrix nan_seeded_matrix(idx m, idx n, std::uint64_t seed);

/// Random matrix with +/-Inf planted the same way.
Matrix inf_seeded_matrix(idx m, idx n, std::uint64_t seed);

/// Random matrix whose column `col` is exactly zero: the panel containing
/// `col` is exactly singular by construction, with no floating-point
/// cancellation involved (the pivot search sees literal zeros).
Matrix zero_column_matrix(idx m, idx n, idx col, std::uint64_t seed);

/// One named adversarial input.
struct AdversarialCase {
  std::string name;
  Matrix a;
  /// Exactly rank-deficient: LU factorizations may legitimately report
  /// info != 0, but the backward-error bound must still hold.
  bool singular = false;
};

/// The ensemble for an m x n problem (m >= n): Wilkinson growth (square
/// cases only; kept at order <= 40 so the 2^(n-1) growth stays exact in
/// doubles), near-singular, duplicate-row, rank-deficient, badly scaled.
std::vector<AdversarialCase> adversarial_cases(idx m, idx n,
                                               std::uint64_t seed);

}  // namespace camult::test
