// WorkerPool tests: persistent workers executing per-run TaskGraphs.
//
// Covers the attach/detach protocol (graphs draining on destruction, many
// sequential runs on one pool), concurrent independent DAGs sharing one
// pool with no stats cross-talk, bitwise-identical CALU/CAQR results
// between owned-threads and attached-pool modes, the factorize-batch
// drivers, run_on_all_workers, thread-local slab-pool persistence across
// runs (the property the persistent pool exists to restore), CPU pinning,
// and exception propagation through an attached graph's wait().
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "blas/pack.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "core/drivers.hpp"
#include "matrix/random.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/worker_pool.hpp"

namespace camult {
namespace {

rt::TaskGraph::Config attached(rt::WorkerPool& pool, bool trace = false) {
  rt::TaskGraph::Config cfg;
  cfg.num_threads = pool.size();  // any non-zero value; width comes from pool
  cfg.record_trace = trace;
  cfg.pool = &pool;
  return cfg;
}

TEST(DefaultNumThreads, SaneRange) {
  const int n = rt::default_num_threads();
  EXPECT_GE(n, 1);
  EXPECT_LE(n, 32);
}

TEST(WorkerPool, SingleGraphRunsAllTasks) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, false});
  EXPECT_EQ(pool.size(), 2);
  rt::TaskGraph g(attached(pool));
  EXPECT_EQ(g.execution_width(), 2);
  std::atomic<int> count{0};
  std::vector<rt::TaskId> prev;
  for (int i = 0; i < 200; ++i) {
    // Mix independent tasks and short chains so dependency resolution and
    // the wake path both run on pool workers.
    std::vector<rt::TaskId> deps;
    if (i % 3 == 0 && !prev.empty()) deps.push_back(prev.back());
    prev.push_back(g.submit(deps, {}, [&count] { ++count; }));
  }
  g.wait();
  EXPECT_EQ(count.load(), 200);
  EXPECT_EQ(g.stats().totals().tasks_executed, 200);
}

TEST(WorkerPool, DestructorDrainsWithoutWait) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, false});
  std::atomic<int> count{0};
  {
    rt::TaskGraph g(attached(pool));
    for (int i = 0; i < 100; ++i) g.submit({}, {}, [&count] { ++count; });
    // No wait(): the destructor must drain every pending task through the
    // pool before detaching, like owned mode's join-at-destruction.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPool, TwoGraphsConcurrentlyNoStatsCrossTalk) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{3, false});
  rt::TaskGraph g1(attached(pool));
  rt::TaskGraph g2(attached(pool));
  std::atomic<long> sum1{0}, sum2{0};
  // Interleave submissions so both DAGs are in flight together and pool
  // workers rotate between them.
  for (int i = 0; i < 150; ++i) {
    g1.submit({}, {}, [&sum1, i] { sum1 += i; });
    g2.submit({}, {}, [&sum2, i] { sum2 += 2 * i; });
    g2.submit({}, {}, [&sum2] { sum2 += 1; });
  }
  g1.wait();
  g2.wait();
  const long base = 150L * 149L / 2L;
  EXPECT_EQ(sum1.load(), base);
  EXPECT_EQ(sum2.load(), 2 * base + 150);
  // Per-graph counters must attribute each task to its own graph only.
  EXPECT_EQ(g1.stats().totals().tasks_executed, 150);
  EXPECT_EQ(g2.stats().totals().tasks_executed, 300);
}

TEST(WorkerPool, SequentialGraphsFoldIntoLifetimeStats) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, false});
  for (int run = 0; run < 5; ++run) {
    rt::TaskGraph g(attached(pool));
    std::atomic<int> c{0};
    for (int i = 0; i < 10; ++i) g.submit({}, {}, [&c] { ++c; });
    g.wait();
    EXPECT_EQ(c.load(), 10);
  }
  const rt::WorkerPoolStats st = pool.stats();
  EXPECT_EQ(st.size, 2);
  EXPECT_EQ(st.graphs_attached, 5);
  EXPECT_EQ(st.graphs_detached, 5);
  // Lifetime stats are the per-run SchedulerStats folded at detach.
  EXPECT_EQ(st.lifetime.totals().tasks_executed, 50);
  EXPECT_EQ(static_cast<int>(st.lifetime.workers.size()), 2);
}

TEST(WorkerPool, RunOnAllWorkersReachesEveryThread) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{3, false});
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.run_on_all_workers([&] {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(static_cast<int>(seen.size()), 3);
  EXPECT_EQ(seen.count(std::this_thread::get_id()), 0u);
  EXPECT_EQ(pool.stats().control_runs, 1);
  // And again while a graph is actively executing: control interleaves
  // between task batches instead of waiting for idle.
  rt::TaskGraph g(attached(pool));
  std::atomic<int> c{0};
  for (int i = 0; i < 400; ++i) {
    g.submit({}, {}, [&c] {
      volatile long acc = 0;
      for (int j = 0; j < 2000; ++j) acc = acc + j;
      ++c;
    });
  }
  std::atomic<int> control_hits{0};
  pool.run_on_all_workers([&control_hits] { ++control_hits; });
  EXPECT_EQ(control_hits.load(), 3);
  g.wait();
  EXPECT_EQ(c.load(), 400);
}

TEST(WorkerPool, RunOnAllWorkersIdlePoolRepeated) {
  // Regression: the control epoch used to be bumped (and broadcast) without
  // holding the sleep mutex, so the bump could land between a parking
  // worker's predicate check and its wait() — the worker slept through the
  // notify and run_on_all_workers hung on an otherwise-idle pool. Each
  // iteration below races a control run against workers re-parking from
  // the previous one; pre-fix this loop hangs within a few hundred rounds.
  rt::WorkerPool pool(rt::WorkerPoolConfig{4, false});
  std::atomic<int> hits{0};
  for (int i = 0; i < 500; ++i) {
    pool.run_on_all_workers([&hits] { ++hits; });
  }
  EXPECT_EQ(hits.load(), 4 * 500);
  EXPECT_EQ(pool.stats().control_runs, 500);
}

TEST(WorkerPool, RunOnAllWorkersFromWorkerThrows) {
  // A pool worker calling run_on_all_workers on its own pool can never ack
  // its own epoch; it must throw std::logic_error instead of hanging.
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, false});
  std::atomic<bool> threw{false};
  {
    rt::TaskGraph g(attached(pool));
    g.submit({}, {}, [&] {
      try {
        pool.run_on_all_workers([] {});
      } catch (const std::logic_error&) {
        threw = true;
      }
    });
    g.wait();
  }
  EXPECT_TRUE(threw.load());
  // The rejected call must not have half-published an epoch: a normal
  // control run from the owning thread still completes.
  std::atomic<int> hits{0};
  pool.run_on_all_workers([&hits] { ++hits; });
  EXPECT_EQ(hits.load(), 2);
}

TEST(WorkerPool, ControlRunsInterleaveWithSubmissionBursts) {
  // Stress the interaction between control broadcasts and the task-push
  // relay credit: a control notify_all must not strand a push's wake (the
  // consuming worker forwards it), and repeated control runs during
  // ramp-up must not stall task completion.
  rt::WorkerPool pool(rt::WorkerPoolConfig{4, false});
  rt::TaskGraph g(attached(pool));
  std::atomic<int> done{0};
  std::thread controller([&pool] {
    for (int i = 0; i < 60; ++i) pool.run_on_all_workers([] {});
  });
  for (int burst = 0; burst < 60; ++burst) {
    for (int i = 0; i < 20; ++i) g.submit({}, {}, [&done] { ++done; });
    std::this_thread::yield();
  }
  controller.join();
  g.wait();
  EXPECT_EQ(done.load(), 60 * 20);
}

TEST(WorkerPool, ExceptionPropagatesThroughAttachedWait) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, false});
  {
    rt::TaskGraph g(attached(pool));
    std::atomic<int> c{0};
    for (int i = 0; i < 20; ++i) g.submit({}, {}, [&c] { ++c; });
    g.submit({}, {}, [] { throw std::runtime_error("task boom"); });
    for (int i = 0; i < 20; ++i) g.submit({}, {}, [&c] { ++c; });
    EXPECT_THROW(g.wait(), std::runtime_error);
    // Fast-abort skips whatever had not started, but the graph still
    // drains: every task is accounted for and none is left pending.
    const rt::WorkerStats totals = g.stats().totals();
    EXPECT_EQ(totals.tasks_executed + totals.tasks_skipped, 41);
    EXPECT_EQ(totals.tasks_executed, c.load() + 1);  // + the throwing task
    EXPECT_LE(c.load(), 40);
  }
  // The aborted graph detached cleanly: the same pool immediately runs a
  // fresh graph to completion.
  rt::TaskGraph g2(attached(pool));
  std::atomic<int> c2{0};
  for (int i = 0; i < 40; ++i) g2.submit({}, {}, [&c2] { ++c2; });
  g2.wait();
  EXPECT_EQ(c2.load(), 40);
}

TEST(WorkerPool, InlineModeIgnoresPool) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, false});
  rt::TaskGraph::Config cfg;
  cfg.num_threads = 0;  // inline serial (record) mode must stay inline
  cfg.pool = &pool;
  rt::TaskGraph g(cfg);
  EXPECT_EQ(g.pool(), nullptr);
  EXPECT_EQ(g.execution_width(), 1);
  std::thread::id ran_on;
  g.submit({}, {}, [&ran_on] { ran_on = std::this_thread::get_id(); });
  g.wait();
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(WorkerPool, PinnedSmoke) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, true});
  const rt::WorkerPoolStats st = pool.stats();
  EXPECT_EQ(st.size, 2);
#ifdef __linux__
  EXPECT_EQ(st.pinned, 2);  // pinning to cpu t % ncpu must succeed on Linux
#endif
  rt::TaskGraph g(attached(pool));
  std::atomic<int> c{0};
  for (int i = 0; i < 50; ++i) g.submit({}, {}, [&c] { ++c; });
  g.wait();
  EXPECT_EQ(c.load(), 50);
}

TEST(WorkerPool, ProcessDefaultIsSingleton) {
  rt::WorkerPool& a = rt::WorkerPool::process_default();
  rt::WorkerPool& b = rt::WorkerPool::process_default();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1);
  rt::TaskGraph g(attached(a));
  std::atomic<int> c{0};
  g.submit({}, {}, [&c] { ++c; });
  g.wait();
  EXPECT_EQ(c.load(), 1);
}

// --- Slab-pool persistence: the property the pool exists to restore ------

TEST(WorkerPool, SlabPoolPersistsAcrossRuns) {
  // One worker so every acquire lands in the same thread-local pool.
  rt::WorkerPool pool(rt::WorkerPoolConfig{1, false});
  auto touch = [] {
    blas::ScratchBuffer b(4096);
    ASSERT_NE(b.data(), nullptr);
    b.data()[0] = 1.0;  // destructor parks the slab in the worker's pool
  };
  pool.run_on_all_workers(touch);
  const blas::BufferPoolStats s1 = core::pool_buffer_stats(pool);
  EXPECT_EQ(s1.allocs, 1);  // first run allocated the slab
  pool.run_on_all_workers(touch);
  const blas::BufferPoolStats s2 = core::pool_buffer_stats(pool);
  // Second run on the SAME persistent worker reuses the cached slab: the
  // cross-run reuse per-call threads could never provide.
  EXPECT_EQ(s2.allocs, s1.allocs);
  EXPECT_GT(s2.pool_hits, s1.pool_hits);
  // Pool-wide trim drops the cached slab (the thread-local trim from this
  // thread could not reach the worker's pool).
  core::pool_buffer_trim(pool);
  const blas::BufferPoolStats s3 = core::pool_buffer_stats(pool);
  EXPECT_EQ(s3.frees, s3.allocs);
  pool.run_on_all_workers(touch);
  const blas::BufferPoolStats s4 = core::pool_buffer_stats(pool);
  EXPECT_EQ(s4.allocs, s3.allocs + 1);  // trimmed, so this re-allocates
}

TEST(WorkerPool, CaluSlabReuseAcrossCalls) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{1, false});
  core::CaluOptions o;
  o.b = 32;
  o.tr = 2;
  o.num_threads = 1;
  o.pool = &pool;
  o.record_trace = false;
  Matrix a1 = random_matrix(160, 160, 11);
  Matrix a2 = random_matrix(160, 160, 12);
  (void)core::calu_factor(a1.view(), o);
  const blas::BufferPoolStats s1 = core::pool_buffer_stats(pool);
  (void)core::calu_factor(a2.view(), o);
  const blas::BufferPoolStats s2 = core::pool_buffer_stats(pool);
  // The second call's packs are served from slabs the first call cached:
  // under the persistent pool no steady-state acquire hits operator new.
  EXPECT_GT(s2.pool_hits, s1.pool_hits);
  EXPECT_EQ(s2.allocs, s1.allocs);
}

// --- Bitwise equivalence of owned-threads vs attached-pool execution -----

bool bitwise_equal(ConstMatrixView x, ConstMatrixView y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (idx j = 0; j < x.cols(); ++j) {
    if (std::memcmp(x.col_ptr(j), y.col_ptr(j),
                    sizeof(double) * static_cast<std::size_t>(x.rows())) !=
        0) {
      return false;
    }
  }
  return true;
}

TEST(WorkerPool, CaluBitwiseMatchesOwnedThreads) {
  const Matrix a0 = random_matrix(180, 180, 42);
  core::CaluOptions base;
  base.b = 48;
  base.tr = 3;
  base.record_trace = false;
  base.num_threads = 3;

  Matrix a_owned = a0;
  const core::CaluResult r_owned = core::calu_factor(a_owned.view(), base);

  rt::WorkerPool pool(rt::WorkerPoolConfig{3, false});
  core::CaluOptions att = base;
  att.pool = &pool;
  Matrix a_pool = a0;
  const core::CaluResult r_pool = core::calu_factor(a_pool.view(), att);

  EXPECT_EQ(r_owned.info, r_pool.info);
  EXPECT_EQ(r_owned.ipiv, r_pool.ipiv);
  EXPECT_TRUE(bitwise_equal(a_owned.view(), a_pool.view()));
}

TEST(WorkerPool, CaqrBitwiseMatchesOwnedThreads) {
  const Matrix a0 = random_matrix(200, 120, 43);
  core::CaqrOptions base;
  base.b = 40;
  base.tr = 3;
  base.record_trace = false;
  base.num_threads = 3;

  Matrix a_owned = a0;
  const core::CaqrResult r_owned = core::caqr_factor(a_owned.view(), base);

  rt::WorkerPool pool(rt::WorkerPoolConfig{3, false});
  core::CaqrOptions att = base;
  att.pool = &pool;
  Matrix a_pool = a0;
  const core::CaqrResult r_pool = core::caqr_factor(a_pool.view(), att);

  EXPECT_TRUE(bitwise_equal(a_owned.view(), a_pool.view()));
  const Matrix r1 = core::caqr_extract_r(a_owned.view(), r_owned);
  const Matrix r2 = core::caqr_extract_r(a_pool.view(), r_pool);
  EXPECT_TRUE(bitwise_equal(r1.view(), r2.view()));
}

// --- Batch drivers -------------------------------------------------------

TEST(WorkerPool, CaluFactorBatchMatchesSingleCalls) {
  core::CaluOptions o;
  o.b = 32;
  o.tr = 2;
  o.num_threads = 2;
  o.record_trace = false;
  std::vector<Matrix> singles, batched;
  for (int i = 0; i < 4; ++i) {
    singles.push_back(random_matrix(96, 96, 500 + i));
    batched.push_back(singles.back());
  }
  std::vector<core::CaluResult> want;
  for (Matrix& m : singles) want.push_back(core::calu_factor(m.view(), o));
  std::vector<MatrixView> views;
  for (Matrix& m : batched) views.push_back(m.view());
  const std::vector<core::CaluResult> got = core::calu_factor_batch(views, o);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].info, want[i].info) << "matrix " << i;
    EXPECT_EQ(got[i].ipiv, want[i].ipiv) << "matrix " << i;
    EXPECT_TRUE(bitwise_equal(batched[i].view(), singles[i].view()))
        << "matrix " << i;
  }
}

TEST(WorkerPool, CaluFactorBatchOnCallerPool) {
  rt::WorkerPool pool(rt::WorkerPoolConfig{2, false});
  core::CaluOptions o;
  o.b = 32;
  o.tr = 2;
  o.num_threads = 2;
  o.pool = &pool;
  o.record_trace = false;
  std::vector<Matrix> ms;
  for (int i = 0; i < 3; ++i) ms.push_back(random_matrix(96, 96, 700 + i));
  std::vector<Matrix> ref = ms;
  std::vector<MatrixView> views;
  for (Matrix& m : ms) views.push_back(m.view());
  const auto got = core::calu_factor_batch(views, o);
  ASSERT_EQ(got.size(), 3u);
  core::CaluOptions serial = o;
  serial.pool = nullptr;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const auto want = core::calu_factor(ref[i].view(), serial);
    EXPECT_EQ(got[i].ipiv, want.ipiv);
    EXPECT_TRUE(bitwise_equal(ms[i].view(), ref[i].view()));
  }
  EXPECT_EQ(pool.stats().graphs_detached, 3);
}

TEST(WorkerPool, CaqrFactorBatchMatchesSingleCalls) {
  core::CaqrOptions o;
  o.b = 32;
  o.tr = 2;
  o.num_threads = 2;
  o.record_trace = false;
  std::vector<Matrix> singles, batched;
  for (int i = 0; i < 3; ++i) {
    singles.push_back(random_matrix(120, 80, 900 + i));
    batched.push_back(singles.back());
  }
  std::vector<core::CaqrResult> want;
  for (Matrix& m : singles) want.push_back(core::caqr_factor(m.view(), o));
  std::vector<MatrixView> views;
  for (Matrix& m : batched) views.push_back(m.view());
  const auto got = core::caqr_factor_batch(views, o);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(batched[i].view(), singles[i].view()))
        << "matrix " << i;
  }
}

}  // namespace
}  // namespace camult
