// Two-phase GEMM API tests: the pack_a/pack_b + gemm_packed pipeline versus
// the one-shot gemm and the naive reference, on fringe sizes that straddle
// every blocking boundary (MR/NR register tiles, MC/KC/NC cache blocks),
// all four Trans combinations, degenerate alpha/beta, and ld > rows views.
// Plus the scratch-pool counters the packing machinery is supposed to keep
// off the allocator.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

using blas::Trans;
using camult::test::matrices_near;
using camult::test::max_diff;
using camult::test::reference_gemm;

// Operand sized so op(X) has the requested logical dims.
Matrix operand(Trans t, idx op_rows, idx op_cols, std::uint64_t seed) {
  return t == Trans::NoTrans ? random_matrix(op_rows, op_cols, seed)
                             : random_matrix(op_cols, op_rows, seed);
}

double tol_for(idx k) { return 1e-13 * static_cast<double>(k + 1); }

void check_gemm_vs_reference(idx m, idx n, idx k, Trans ta, Trans tb,
                             double alpha, double beta) {
  const Matrix a = operand(ta, m, k, 100 + m + 3 * k);
  const Matrix b = operand(tb, k, n, 200 + n + 5 * k);
  Matrix c = random_matrix(m, n, 300 + m + n);
  Matrix want = c;
  reference_gemm(ta, tb, alpha, a.view(), b.view(), beta, want.view());
  blas::gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view());
  EXPECT_TRUE(matrices_near(c.view(), want.view(), tol_for(k)))
      << "m=" << m << " n=" << n << " k=" << k << " ta=" << (int)ta
      << " tb=" << (int)tb << " alpha=" << alpha << " beta=" << beta;
}

// ---- Fringe sizes around the register tiles (MR=8, NR=6) ----------------

TEST(GemmFringe, RegisterTileBoundaries) {
  const std::vector<idx> ms = {1, 7, 8, 9, 16, 17};
  const std::vector<idx> ns = {1, 5, 6, 7, 12, 13};
  const std::vector<idx> ks = {1, 2, 8, 33};
  for (idx m : ms) {
    for (idx n : ns) {
      for (idx k : ks) {
        check_gemm_vs_reference(m, n, k, Trans::NoTrans, Trans::NoTrans, 1.0,
                                1.0);
      }
    }
  }
}

TEST(GemmFringe, AllTransCombos) {
  for (Trans ta : {Trans::NoTrans, Trans::Trans}) {
    for (Trans tb : {Trans::NoTrans, Trans::Trans}) {
      for (idx m : {7, 9, 24}) {
        for (idx n : {5, 7, 18}) {
          check_gemm_vs_reference(m, n, 33, ta, tb, -1.0, 1.0);
        }
      }
    }
  }
}

// Sizes one below / at / one above the cache blocks (MC=192, KC=256,
// NC=768): the packed-offset arithmetic switches between full and ragged
// blocks exactly here.
TEST(GemmFringe, CacheBlockBoundaries) {
  for (idx m : {blas::kGemmMC - 1, blas::kGemmMC, blas::kGemmMC + 1}) {
    check_gemm_vs_reference(m, 20, 20, Trans::NoTrans, Trans::NoTrans, 1.0,
                            1.0);
  }
  for (idx k : {blas::kGemmKC - 1, blas::kGemmKC, blas::kGemmKC + 1}) {
    check_gemm_vs_reference(24, 20, k, Trans::NoTrans, Trans::Trans, 1.0,
                            -1.0);
  }
  for (idx n : {blas::kGemmNC - 1, blas::kGemmNC, blas::kGemmNC + 1}) {
    check_gemm_vs_reference(20, n, 24, Trans::Trans, Trans::NoTrans, 1.0,
                            1.0);
  }
}

TEST(GemmFringe, DegenerateAlphaBeta) {
  for (double beta : {0.0, 1.0, -1.0}) {
    check_gemm_vs_reference(17, 13, 9, Trans::NoTrans, Trans::NoTrans, 0.0,
                            beta);
    check_gemm_vs_reference(17, 13, 9, Trans::Trans, Trans::Trans, 2.0, beta);
    check_gemm_vs_reference(200, 40, 24, Trans::NoTrans, Trans::NoTrans, 0.0,
                            beta);
  }
}

// beta = 0 must overwrite even when C starts with NaNs (0 * NaN != 0).
TEST(GemmFringe, BetaZeroOverwritesNan) {
  const idx m = 17, n = 13, k = 9;
  const Matrix a = random_matrix(m, k, 1);
  const Matrix b = random_matrix(k, n, 2);
  Matrix c(m, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < m; ++i) c(i, j) = std::nan("");
  }
  Matrix want = Matrix::zeros(m, n);
  reference_gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.view(), b.view(), 0.0,
                 want.view());
  blas::gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.view(), b.view(), 0.0,
             c.view());
  EXPECT_TRUE(matrices_near(c.view(), want.view(), tol_for(k)));
}

// Operands and C taken as interior blocks of larger matrices: ld > rows on
// every view.
TEST(GemmFringe, StridedViews) {
  const idx M = 64, N = 48, K = 40;
  Matrix pa = random_matrix(M, K, 11);
  Matrix pb = random_matrix(K, N, 12);
  Matrix pc = random_matrix(M, N, 13);
  const idx m = 33, n = 19, k = 25;
  ConstMatrixView a = pa.view().block(5, 3, m, k);
  ConstMatrixView b = pb.view().block(7, 2, k, n);
  MatrixView c = pc.view().block(9, 6, m, n);
  Matrix want = Matrix::from(c);
  reference_gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a, b, 1.0,
                 want.view());
  blas::gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a, b, 1.0, c);
  EXPECT_TRUE(matrices_near(c, want.view(), tol_for(k)));
}

// ---- gemm_packed ---------------------------------------------------------

void check_packed_a(idx m, idx n, idx k, Trans ta) {
  const Matrix a = operand(ta, m, k, 400 + m);
  const Matrix b = random_matrix(k, n, 500 + n);
  Matrix c = random_matrix(m, n, 600);
  Matrix want = c;
  reference_gemm(ta, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0,
                 want.view());
  const blas::PackedPanel pa = blas::pack_a(a.view(), ta);
  EXPECT_TRUE(pa.valid());
  EXPECT_EQ(pa.rows(), m);
  EXPECT_EQ(pa.cols(), k);
  blas::gemm_packed(-1.0, pa, Trans::NoTrans, b.view(), 1.0, c.view());
  EXPECT_TRUE(matrices_near(c.view(), want.view(), tol_for(k)))
      << "m=" << m << " n=" << n << " k=" << k << " ta=" << (int)ta;
}

void check_packed_b(idx m, idx n, idx k, Trans tb) {
  const Matrix a = random_matrix(m, k, 700 + m);
  const Matrix b = operand(tb, k, n, 800 + n);
  Matrix c = random_matrix(m, n, 900);
  Matrix want = c;
  reference_gemm(Trans::NoTrans, tb, 1.0, a.view(), b.view(), 1.0,
                 want.view());
  const blas::PackedPanel pb = blas::pack_b(b.view(), tb);
  EXPECT_TRUE(pb.valid());
  EXPECT_EQ(pb.rows(), k);
  EXPECT_EQ(pb.cols(), n);
  blas::gemm_packed(Trans::NoTrans, 1.0, a.view(), pb, 1.0, c.view());
  EXPECT_TRUE(matrices_near(c.view(), want.view(), tol_for(k)))
      << "m=" << m << " n=" << n << " k=" << k << " tb=" << (int)tb;
}

TEST(GemmPacked, MatchesReferenceAcrossBoundaries) {
  for (Trans t : {Trans::NoTrans, Trans::Trans}) {
    for (idx m : {idx{1}, idx{7}, idx{9}, idx{64}, blas::kGemmMC + 1}) {
      check_packed_a(m, 13, 21, t);
    }
    for (idx n : {idx{1}, idx{5}, idx{7}, idx{48}, blas::kGemmNC + 1}) {
      check_packed_b(19, n, 21, t);
    }
    check_packed_a(33, 17, blas::kGemmKC + 1, t);
    check_packed_b(33, 17, blas::kGemmKC + 1, t);
  }
}

// A packed panel reused across column segments must give bit-identical
// results to one-shot gemm on each segment (both run the same blocked
// loop; per-column arithmetic is independent of the n split). This is the
// invariant that lets the schedulers swap plain S tasks for packed ones
// without perturbing pivots.
TEST(GemmPacked, BitIdenticalToGemmOnSegments) {
  const idx m = 300, k = 40, segw = 32, segs = 6;
  const Matrix a = random_matrix(m, k, 21);
  const Matrix b = random_matrix(k, segw * segs, 22);
  Matrix c1 = random_matrix(m, segw * segs, 23);
  Matrix c2 = c1;
  const blas::PackedPanel pa = blas::pack_a(a.view(), Trans::NoTrans);
  for (idx s = 0; s < segs; ++s) {
    blas::gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(),
               b.view().block(0, s * segw, k, segw), 1.0,
               c1.view().block(0, s * segw, m, segw));
    blas::gemm_packed(-1.0, pa, Trans::NoTrans,
                      b.view().block(0, s * segw, k, segw), 1.0,
                      c2.view().block(0, s * segw, m, segw));
  }
  EXPECT_EQ(max_diff(c1.view(), c2.view()), 0.0);
}

// Transposition is absorbed at pack time: packing A and A^T (transposed)
// must produce identical panels.
TEST(GemmPacked, TransAbsorbedAtPackTime) {
  const idx m = 37, k = 21;
  const Matrix a = random_matrix(m, k, 31);
  Matrix at(k, m);
  for (idx j = 0; j < k; ++j) {
    for (idx i = 0; i < m; ++i) at(j, i) = a(i, j);
  }
  const blas::PackedPanel p1 = blas::pack_a(a.view(), Trans::NoTrans);
  const blas::PackedPanel p2 = blas::pack_a(at.view(), Trans::Trans);
  ASSERT_EQ(p1.rows(), p2.rows());
  ASSERT_EQ(p1.cols(), p2.cols());
  const Matrix b = random_matrix(k, 11, 32);
  Matrix c1 = Matrix::zeros(m, 11);
  Matrix c2 = Matrix::zeros(m, 11);
  blas::gemm_packed(1.0, p1, Trans::NoTrans, b.view(), 0.0, c1.view());
  blas::gemm_packed(1.0, p2, Trans::NoTrans, b.view(), 0.0, c2.view());
  EXPECT_EQ(max_diff(c1.view(), c2.view()), 0.0);
}

// ---- PackedPanel layout --------------------------------------------------

// a_block(0, 0) of a small panel must hold exactly what pack_a_block writes:
// mr-row panels (mr = the panel's recorded register tile), column-major
// within panel, zero padded to mr.
TEST(PackedPanelLayout, MatchesPackABlock) {
  const idx m = 11, k = 5;  // one or two ragged mr panels
  const Matrix a = random_matrix(m, k, 41);
  const blas::PackedPanel p = blas::pack_a(a.view(), Trans::NoTrans);
  const idx mr = p.blocking().mr;
  std::vector<double> want(
      static_cast<std::size_t>(((m + mr - 1) / mr) * mr * k));
  blas::pack_a_block(a.view(), Trans::NoTrans, 0, 0, m, k, mr, want.data());
  const double* got = p.a_block(0, 0);
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "offset " << i;
  }
}

TEST(PackedPanelLayout, SixtyFourByteAligned) {
  const blas::PackedPanel pa =
      blas::pack_a(random_matrix(50, 30, 51).view(), Trans::NoTrans);
  const blas::PackedPanel pb =
      blas::pack_b(random_matrix(30, 50, 52).view(), Trans::NoTrans);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pa.a_block(0, 0)) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(pb.b_block(0, 0)) % 64, 0u);
}

TEST(PackedPanelLayout, EmptyAndMoves) {
  blas::PackedPanel empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.valid());  // 0-sized counts as valid

  blas::PackedPanel p =
      blas::pack_a(random_matrix(20, 10, 61).view(), Trans::NoTrans);
  const double* data = p.a_block(0, 0);
  blas::PackedPanel q = std::move(p);
  EXPECT_EQ(q.a_block(0, 0), data);
  EXPECT_EQ(q.rows(), 20);
  p = std::move(q);
  EXPECT_EQ(p.a_block(0, 0), data);
}

// ---- Scratch pool --------------------------------------------------------

TEST(BufferPool, ReusesSlabs) {
  blas::buffer_pool_trim();
  const auto before = blas::buffer_pool_stats();
  {
    blas::ScratchBuffer b1(1000);
    EXPECT_NE(b1.data(), nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b1.data()) % 64, 0u);
  }
  // Same size again: must come from the pool, not the allocator.
  { blas::ScratchBuffer b2(1000); }
  { blas::ScratchBuffer b3(900); }  // smaller: the cached slab still fits
  const auto after = blas::buffer_pool_stats();
  EXPECT_EQ(after.acquires - before.acquires, 3);
  EXPECT_EQ(after.allocs - before.allocs, 1);
  EXPECT_EQ(after.pool_hits - before.pool_hits, 2);
  blas::buffer_pool_trim();
}

TEST(BufferPool, GemmStopsAllocatingAfterWarmup) {
  blas::buffer_pool_trim();
  const Matrix a = random_matrix(100, 60, 71);
  const Matrix b = random_matrix(60, 80, 72);
  Matrix c = Matrix::zeros(100, 80);
  blas::gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.view(), b.view(), 0.0,
             c.view());
  const auto warm = blas::buffer_pool_stats();
  for (int r = 0; r < 10; ++r) {
    blas::gemm(Trans::NoTrans, Trans::NoTrans, 1.0, a.view(), b.view(), 0.0,
               c.view());
  }
  const auto after = blas::buffer_pool_stats();
  EXPECT_EQ(after.allocs, warm.allocs)
      << "steady-state gemm must not touch operator new";
  EXPECT_GT(after.pool_hits, warm.pool_hits);
}

TEST(BufferPool, TrimDropsCachedSlabs) {
  blas::buffer_pool_trim();
  { blas::ScratchBuffer b(2048); }
  const auto cached = blas::buffer_pool_stats();
  blas::buffer_pool_trim();
  const auto trimmed = blas::buffer_pool_stats();
  EXPECT_EQ(trimmed.frees - cached.frees, 1);
}

TEST(BufferPool, ZeroSizeIsEmpty) {
  blas::ScratchBuffer b(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

namespace {

// Regression: ScratchBuffer used from a thread_local destructor AFTER the
// thread's slab pool has itself been destroyed. thread_local objects are
// destroyed in reverse construction order, so an object constructed BEFORE
// the pool outlives it — if its destructor releases a ScratchBuffer (or
// builds a new one), the old code re-entered the dead pool: heap
// use-after-free under ASAN, corruption otherwise. The fix makes pool()
// return nullptr once the owning TLS object is gone; acquire/release then
// fall back to direct aligned new/delete.
struct LateHolder {
  blas::ScratchBuffer stashed;  // released in ~LateHolder, after pool death
  bool* ok = nullptr;
  ~LateHolder() {
    stashed = blas::ScratchBuffer();  // release into the (dead) pool
    blas::ScratchBuffer fresh(256);   // acquire with no pool at all
    *ok = fresh.data() != nullptr;
    fresh.data()[0] = 1.0;
    // Stats/trim must be inert, not crash, once the pool is gone.
    const auto st = blas::buffer_pool_stats();
    (void)st;
    blas::buffer_pool_trim();
  }
};

}  // namespace

TEST(BufferPool, SafeAfterThreadLocalPoolDestroyed) {
  bool late_alloc_ok = false;
  std::thread t([&late_alloc_ok] {
    // Construct the holder FIRST so it is destroyed LAST — i.e. after the
    // pool's own thread_local owner has already run its destructor.
    static thread_local LateHolder holder;
    holder.ok = &late_alloc_ok;
    // Now touch the pool so its thread_local owner is constructed (after
    // holder) and destroyed (before holder) on thread exit.
    blas::ScratchBuffer warm(1024);
    ASSERT_NE(warm.data(), nullptr);
    warm.data()[0] = 2.0;
    holder.stashed = blas::ScratchBuffer(512);
    ASSERT_NE(holder.stashed.data(), nullptr);
  });
  t.join();
  EXPECT_TRUE(late_alloc_ok);
}

}  // namespace
}  // namespace camult
