// Tests for the simulated-multicore list scheduler: correctness of the
// schedule (dependencies, no core oversubscription), determinism, speedup
// limits, priority policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

#include "sim/sim_scheduler.hpp"

namespace camult::sim {
namespace {

using rt::TaskGraph;
using rt::TaskRecord;

TaskRecord task(rt::TaskId id, std::int64_t dur, int priority = 0) {
  TaskRecord r;
  r.id = id;
  r.start_ns = 0;
  r.end_ns = dur;
  r.priority = priority;
  return r;
}

TEST(Sim, SingleTask) {
  auto res = simulate({task(0, 100)}, {}, 4);
  EXPECT_EQ(res.makespan_ns, 100);
  EXPECT_EQ(res.critical_path_ns, 100);
  EXPECT_EQ(res.total_work_ns, 100);
}

TEST(Sim, IndependentTasksRunInParallel) {
  std::vector<TaskRecord> ts = {task(0, 100), task(1, 100), task(2, 100),
                                task(3, 100)};
  auto res = simulate(ts, {}, 4);
  EXPECT_EQ(res.makespan_ns, 100);
  auto res1 = simulate(ts, {}, 1);
  EXPECT_EQ(res1.makespan_ns, 400);
  auto res2 = simulate(ts, {}, 2);
  EXPECT_EQ(res2.makespan_ns, 200);
}

TEST(Sim, ChainIsSerial) {
  std::vector<TaskRecord> ts = {task(0, 50), task(1, 50), task(2, 50)};
  std::vector<TaskGraph::Edge> es = {{0, 1}, {1, 2}};
  auto res = simulate(ts, es, 8);
  EXPECT_EQ(res.makespan_ns, 150);
  EXPECT_EQ(res.critical_path_ns, 150);
}

TEST(Sim, RespectsDependencies) {
  std::vector<TaskRecord> ts = {task(0, 10), task(1, 20), task(2, 30),
                                task(3, 5)};
  std::vector<TaskGraph::Edge> es = {{0, 2}, {1, 2}, {2, 3}};
  auto res = simulate(ts, es, 2);
  const auto& s = res.schedule;
  EXPECT_GE(s[2].start_ns, s[0].end_ns);
  EXPECT_GE(s[2].start_ns, s[1].end_ns);
  EXPECT_GE(s[3].start_ns, s[2].end_ns);
}

TEST(Sim, NoCoreOversubscription) {
  std::vector<TaskRecord> ts;
  for (int i = 0; i < 50; ++i) ts.push_back(task(i, 10 + i));
  auto res = simulate(ts, {}, 3);
  // Check per-core intervals do not overlap.
  std::map<int, std::vector<std::pair<std::int64_t, std::int64_t>>> by_core;
  for (const auto& r : res.schedule) {
    ASSERT_GE(r.worker, 0);
    ASSERT_LT(r.worker, 3);
    by_core[r.worker].push_back({r.start_ns, r.end_ns});
  }
  for (auto& [core, spans] : by_core) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].first, spans[i - 1].second);
    }
  }
}

TEST(Sim, PriorityBreaksTies) {
  // One core; two ready tasks; the higher priority one runs first.
  std::vector<TaskRecord> ts = {task(0, 10, 1), task(1, 10, 5)};
  auto res = simulate(ts, {}, 1);
  EXPECT_GT(res.schedule[0].start_ns, res.schedule[1].start_ns);
}

TEST(Sim, Deterministic) {
  std::vector<TaskRecord> ts;
  std::vector<TaskGraph::Edge> es;
  for (int i = 0; i < 100; ++i) ts.push_back(task(i, (i * 37) % 90 + 10));
  for (int i = 10; i < 100; ++i) es.push_back({i - 10, i});
  auto r1 = simulate(ts, es, 4);
  auto r2 = simulate(ts, es, 4);
  ASSERT_EQ(r1.schedule.size(), r2.schedule.size());
  for (std::size_t i = 0; i < r1.schedule.size(); ++i) {
    EXPECT_EQ(r1.schedule[i].worker, r2.schedule[i].worker);
    EXPECT_EQ(r1.schedule[i].start_ns, r2.schedule[i].start_ns);
  }
}

TEST(Sim, MakespanBounds) {
  // Greedy list scheduling satisfies: max(cp, work/p) <= makespan
  // <= cp + work/p (Graham bound).
  std::vector<TaskRecord> ts;
  std::vector<TaskGraph::Edge> es;
  for (int i = 0; i < 200; ++i) ts.push_back(task(i, (i * 131) % 400 + 20));
  for (int i = 1; i < 200; ++i) {
    if (i % 3 == 0) es.push_back({i - 1, i});
    if (i % 7 == 0) es.push_back({i / 2, i});
  }
  for (int p : {1, 2, 4, 8, 16}) {
    auto r = simulate(ts, es, p);
    const double lower = std::max<double>(
        static_cast<double>(r.critical_path_ns),
        static_cast<double>(r.total_work_ns) / p);
    EXPECT_GE(static_cast<double>(r.makespan_ns) + 1e-9, lower) << "p=" << p;
    EXPECT_LE(r.makespan_ns,
              r.critical_path_ns + r.total_work_ns / p + 1) << "p=" << p;
  }
}

TEST(Sim, MoreCoresNeverSlower) {
  std::vector<TaskRecord> ts;
  std::vector<TaskGraph::Edge> es;
  for (int i = 0; i < 150; ++i) ts.push_back(task(i, (i * 53) % 100 + 5));
  for (int i = 5; i < 150; ++i) es.push_back({i - 5, i});
  std::int64_t prev = simulate(ts, es, 1).makespan_ns;
  for (int p : {2, 4, 8}) {
    // Greedy scheduling anomalies can in theory make this non-monotone, but
    // with uniform priorities and this DAG shape it holds; allow 10% slack.
    const std::int64_t cur = simulate(ts, es, p).makespan_ns;
    EXPECT_LE(cur, prev + prev / 10) << "p=" << p;
    prev = cur;
  }
}

TEST(Sim, ZeroCoresThrows) {
  EXPECT_THROW(simulate({task(0, 1)}, {}, 0), std::invalid_argument);
}

TEST(Sim, EmptyGraph) {
  auto r = simulate({}, {}, 4);
  EXPECT_EQ(r.makespan_ns, 0);
}

}  // namespace
}  // namespace camult::sim
