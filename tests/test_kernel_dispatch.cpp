// Runtime microkernel dispatch: registry/cpuid selection sanity, forced
// selection via set_active_kernel, fringe-exhaustive full-vs-fringe bit
// parity for EVERY registered kernel (each mr_eff/nr_eff remainder, several
// alphas), direct microkernel calls on exactly-sized buffers (out-of-bounds
// reads fault under the sanitizer leg), cross-kernel agreement on gemm, and
// the cross-kernel determinism suite: adversarial CALU/CAQR backward-error
// bounds plus packed-vs-unpacked bitwise parity under each forced variant.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "core/calu.hpp"
#include "core/caqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

using blas::GemmBlocking;
using blas::KernelInfo;
using blas::Trans;
using camult::test::kResidualThreshold;

// Restores cpuid auto-selection no matter how a test exits.
struct KernelGuard {
  ~KernelGuard() { blas::set_active_kernel(""); }
};

std::vector<const KernelInfo*> supported_kernels() {
  std::vector<const KernelInfo*> out;
  for (const KernelInfo& k : blas::kernel_registry()) {
    if (k.supported) out.push_back(&k);
  }
  return out;
}

TEST(KernelRegistry, ScalarAlwaysPresentAndSupported) {
  const auto& reg = blas::kernel_registry();
  ASSERT_FALSE(reg.empty());
  bool found_scalar = false;
  for (const KernelInfo& k : reg) {
    if (std::string(k.name) == "scalar") {
      found_scalar = true;
      EXPECT_TRUE(k.compiled);
      EXPECT_TRUE(k.supported);
    }
    if (k.compiled) EXPECT_NE(k.fn, nullptr) << k.name;
    if (k.supported) EXPECT_TRUE(k.compiled) << k.name;
    EXPECT_TRUE(blas::valid_blocking(k.blocking)) << k.name;
    // Unique names.
    int count = 0;
    for (const KernelInfo& o : reg) {
      if (std::string(o.name) == k.name) ++count;
    }
    EXPECT_EQ(count, 1) << k.name;
  }
  EXPECT_TRUE(found_scalar);
  // Whatever cpuid picked must be runnable.
  EXPECT_TRUE(blas::active_kernel().supported);
  EXPECT_NE(blas::active_kernel().fn, nullptr);
}

TEST(KernelRegistry, ForcedSelectionAndTypoSafety) {
  KernelGuard guard;
  const std::string before = blas::active_kernel().name;
  // Unknown names are refused and change nothing.
  EXPECT_FALSE(blas::set_active_kernel("avx1024"));
  EXPECT_FALSE(blas::set_active_kernel("Scalar"));  // case-sensitive
  EXPECT_EQ(std::string(blas::active_kernel().name), before);
  // Every supported kernel can be forced; unsupported ones cannot.
  for (const KernelInfo& k : blas::kernel_registry()) {
    if (k.supported) {
      EXPECT_TRUE(blas::set_active_kernel(k.name)) << k.name;
      EXPECT_EQ(std::string(blas::active_kernel().name), k.name);
    } else {
      EXPECT_FALSE(blas::set_active_kernel(k.name)) << k.name;
    }
  }
  // "" and "auto" both restore cpuid selection.
  EXPECT_TRUE(blas::set_active_kernel("auto"));
  EXPECT_EQ(std::string(blas::active_kernel().name), before);
}

TEST(KernelRegistry, ArchIdStable) {
  EXPECT_FALSE(blas::arch_id().empty());
  EXPECT_EQ(blas::arch_id(), blas::arch_id());
}

TEST(KernelRegistry, ValidBlockingRejectsBadShapes) {
  EXPECT_TRUE(blas::valid_blocking({192, 256, 768, 8, 6}));
  EXPECT_FALSE(blas::valid_blocking({0, 256, 768, 8, 6}));
  EXPECT_FALSE(blas::valid_blocking({192, 0, 768, 8, 6}));
  EXPECT_FALSE(blas::valid_blocking({192, 256, 768, 0, 6}));
  EXPECT_FALSE(blas::valid_blocking({190, 256, 768, 8, 6}));   // mc % mr
  EXPECT_FALSE(blas::valid_blocking({192, 256, 769, 8, 6}));   // nc % nr
  EXPECT_FALSE(blas::valid_blocking({-192, 256, 768, 8, 6}));
  // Slab bound: mc*kc and kc*nc limited to 2^22 doubles.
  EXPECT_FALSE(blas::valid_blocking({1 << 16, 1 << 16, 768, 8, 6}));
  EXPECT_FALSE(blas::valid_blocking({192, 1 << 16, 6 << 12, 8, 6}));
}

// ---- fringe-exhaustive full-vs-fringe bit parity -----------------------
//
// The same valid C rows/cols must get bit-identical results whether the
// microkernel handles them as a full MR x NR tile (problem padded with
// zeros to tile multiples) or as a fringe tile (mr_eff/nr_eff < MR/NR).
// This pins the kernels' store-path contract: the fringe spill must round
// exactly like the vectorized full-tile alpha-update (fused multiply-add
// in both, see kernel_avx2.cpp), for every remainder and several alphas.
TEST(KernelFringeParity, EveryRemainderEveryKernelBitExact) {
  KernelGuard guard;
  const idx k = 96;  // > small-gemm cutoff even at the smallest m, n
  for (const KernelInfo* kern : supported_kernels()) {
    ASSERT_TRUE(blas::set_active_kernel(kern->name));
    const idx mr = kern->blocking.mr;
    const idx nr = kern->blocking.nr;
    for (idx dm = 0; dm < mr; ++dm) {
      for (idx dn = 0; dn < nr; ++dn) {
        const idx m = mr + dm;  // dm == 0: pure full tiles (control)
        const idx n = nr + dn;
        const idx mpad = ((m + mr - 1) / mr) * mr;
        const idx npad = ((n + nr - 1) / nr) * nr;
        const Matrix a = random_matrix(m, k, 600 + dm * 64 + dn);
        const Matrix b = random_matrix(k, n, 700 + dm * 64 + dn);
        const Matrix c0 = random_matrix(m, n, 800 + dm * 64 + dn);
        Matrix apad = Matrix::zeros(mpad, k);
        Matrix bpad = Matrix::zeros(k, npad);
        for (idx j = 0; j < k; ++j) {
          for (idx i = 0; i < m; ++i) apad(i, j) = a(i, j);
        }
        for (idx j = 0; j < n; ++j) {
          for (idx i = 0; i < k; ++i) bpad(i, j) = b(i, j);
        }
        for (const double alpha : {1.0, -1.0, 0.5}) {
          Matrix c_fringe = c0;
          blas::gemm(Trans::NoTrans, Trans::NoTrans, alpha, a.view(),
                     b.view(), 1.0, c_fringe.view());
          Matrix cpad = Matrix::zeros(mpad, npad);
          for (idx j = 0; j < n; ++j) {
            for (idx i = 0; i < m; ++i) cpad(i, j) = c0(i, j);
          }
          blas::gemm(Trans::NoTrans, Trans::NoTrans, alpha, apad.view(),
                     bpad.view(), 1.0, cpad.view());
          for (idx j = 0; j < n; ++j) {
            for (idx i = 0; i < m; ++i) {
              ASSERT_EQ(c_fringe(i, j), cpad(i, j))
                  << kern->name << " m=" << m << " n=" << n
                  << " alpha=" << alpha << " at (" << i << ", " << j << ")";
            }
          }
        }
      }
    }
  }
}

// ---- direct microkernel calls on exactly-sized buffers -----------------
//
// Packed operands sized to exactly ceil(mr_eff/MR)*MR*kc and NR*kc doubles,
// C sized to exactly mr_eff x nr_eff with ldc == mr_eff: any microkernel
// read or write past its contract is an out-of-bounds access the ASAN CI
// leg turns into a hard failure. Values are checked against a plain
// reference too (tolerance: the kernels may contract multiply-add).
TEST(KernelDirectCall, ExactBuffersAllRemaindersAllAlphas) {
  KernelGuard guard;
  for (const KernelInfo* kern : supported_kernels()) {
    ASSERT_TRUE(blas::set_active_kernel(kern->name));
    const idx mr = kern->blocking.mr;
    const idx nr = kern->blocking.nr;
    for (const idx kc : {idx{1}, idx{5}, idx{96}}) {
      for (idx mr_eff = 1; mr_eff <= mr; ++mr_eff) {
        for (idx nr_eff = 1; nr_eff <= nr; ++nr_eff) {
          const Matrix a = random_matrix(mr_eff, kc, 900 + mr_eff);
          const Matrix b = random_matrix(kc, nr_eff, 910 + nr_eff);
          std::vector<double> ap(static_cast<std::size_t>(mr * kc));
          std::vector<double> bp(static_cast<std::size_t>(nr * kc));
          blas::pack_a_block(a.view(), Trans::NoTrans, 0, 0, mr_eff, kc, mr,
                             ap.data());
          blas::pack_b_block(b.view(), Trans::NoTrans, 0, 0, kc, nr_eff, nr,
                             bp.data());
          for (const double alpha : {0.0, 1.0, -1.0, 0.5}) {
            const Matrix c0 = random_matrix(mr_eff, nr_eff, 920);
            Matrix c = c0;
            kern->fn(kc, alpha, ap.data(), bp.data(), c.data(), mr_eff,
                     mr_eff, nr_eff);
            for (idx j = 0; j < nr_eff; ++j) {
              for (idx i = 0; i < mr_eff; ++i) {
                double acc = 0.0;
                for (idx p = 0; p < kc; ++p) acc += a(i, p) * b(p, j);
                const double want = c0(i, j) + alpha * acc;
                const double tol =
                    1e-13 * std::max(1.0, std::abs(want)) *
                    static_cast<double>(kc);
                ASSERT_NEAR(c(i, j), want, tol)
                    << kern->name << " kc=" << kc << " mr_eff=" << mr_eff
                    << " nr_eff=" << nr_eff << " alpha=" << alpha;
              }
            }
          }
        }
      }
    }
  }
}

// ---- cross-kernel agreement on gemm ------------------------------------

TEST(KernelCross, AllVariantsAgreeToRounding) {
  KernelGuard guard;
  const idx m = 150, n = 130, k = 170;
  const Matrix a = random_matrix(m, k, 1200);
  const Matrix b = random_matrix(k, n, 1201);
  const Matrix c0 = random_matrix(m, n, 1202);

  ASSERT_TRUE(blas::set_active_kernel("scalar"));
  Matrix c_ref = c0;
  blas::gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0,
             c_ref.view());
  for (const KernelInfo* kern : supported_kernels()) {
    ASSERT_TRUE(blas::set_active_kernel(kern->name));
    Matrix c = c0;
    blas::gemm(Trans::NoTrans, Trans::NoTrans, -1.0, a.view(), b.view(), 1.0,
               c.view());
    EXPECT_TRUE(camult::test::matrices_near(c.view(), c_ref.view(), 1e-12))
        << kern->name;
  }
}

// ---- cross-kernel determinism on the full factorizations ---------------
//
// Per forced variant: adversarial ensembles (Wilkinson growth,
// near-singular, duplicate rows, rank-deficient, badly scaled) must meet
// the CALU/CAQR backward-error bounds, and the pack-once trailing update
// must stay bitwise identical to the unpacked path (the packed panels run
// the same kernel the unpacked driver dispatches to).
class KernelSweep : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    bool supported = false;
    for (const KernelInfo* k : supported_kernels()) {
      if (std::string(k->name) == GetParam()) supported = true;
    }
    if (!supported) {
      GTEST_SKIP() << GetParam() << " not runnable on this host";
    }
    ASSERT_TRUE(blas::set_active_kernel(GetParam()));
  }
  void TearDown() override { blas::set_active_kernel(""); }
};

TEST_P(KernelSweep, CaluAdversarialBackwardError) {
  for (const auto& c : camult::test::adversarial_cases(120, 60, 1301)) {
    Matrix lu = c.a;
    core::CaluOptions opts;
    opts.b = 20;
    opts.tr = 4;
    opts.num_threads = 4;
    core::CaluResult res = core::calu_factor(lu.view(), opts);
    if (!c.singular) {
      EXPECT_EQ(res.info, 0) << GetParam() << " " << c.name;
    }
    EXPECT_LT(lapack::lu_residual(c.a.view(), lu.view(), res.ipiv),
              kResidualThreshold)
        << GetParam() << " " << c.name;
  }
}

TEST_P(KernelSweep, CaqrAdversarialBackwardError) {
  for (const auto& c : camult::test::adversarial_cases(120, 60, 1303)) {
    Matrix fact = c.a;
    core::CaqrOptions opts;
    opts.b = 20;
    opts.tr = 4;
    opts.num_threads = 4;
    core::CaqrResult res = core::caqr_factor(fact.view(), opts);
    EXPECT_LT(core::caqr_residual(c.a.view(), fact.view(), res),
              kResidualThreshold)
        << GetParam() << " " << c.name;
  }
}

TEST_P(KernelSweep, PackedTrailingUpdateBitwiseParity) {
  // b must keep the per-tile updates above the small-gemm cutoff (16^3
  // flops): below it, plain gemm legitimately takes the direct triple-loop
  // path that gemm_packed (operating on pre-packed data) cannot, and the
  // two sides sum in different orders. 24^3 > 16^3 keeps every trailing
  // tile on the shared blocked path, where parity is bit-exact.
  for (const auto& c : camult::test::adversarial_cases(144, 48, 1305)) {
    Matrix packed = c.a;
    Matrix plain = c.a;
    core::CaluOptions opts;
    opts.b = 24;
    opts.tr = 4;
    opts.num_threads = 4;
    opts.pack_trailing = true;
    core::CaluResult rp = core::calu_factor(packed.view(), opts);
    opts.pack_trailing = false;
    core::CaluResult ru = core::calu_factor(plain.view(), opts);
    ASSERT_EQ(rp.ipiv, ru.ipiv) << GetParam() << " " << c.name;
    EXPECT_EQ(camult::test::max_diff(packed.view(), plain.view()), 0.0)
        << GetParam() << " " << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweep,
                         ::testing::Values("scalar", "avx2", "avx512"));

}  // namespace
}  // namespace camult
