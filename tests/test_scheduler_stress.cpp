// Scheduler stress tests: thousands of tiny tasks through randomized DAGs
// with submission racing execution, across both policies and 1–8 worker
// threads. Asserts the core scheduler contract: every task runs exactly
// once, dependency edges are respected (a predecessor's end never follows
// its successor's start in the recorded trace), exceptions drain the graph
// and rethrow from wait(), and the graph object can be destroyed cleanly
// right after wait().
//
// This file is the primary ThreadSanitizer target (tools/run_tsan.sh): the
// random DAGs exercise every publication path — inbox staging, deque
// self-pop and steal, central priority buckets, the registration/completion
// handshake, and the sleep/wake relay.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/task_graph.hpp"

namespace camult::rt {
namespace {

struct StressParam {
  int threads;
  TaskGraph::Policy policy;
};

std::string param_name(const testing::TestParamInfo<StressParam>& info) {
  const char* policy = info.param.policy == TaskGraph::Policy::CentralPriority
                           ? "Central"
                           : "Stealing";
  return std::string(policy) + std::to_string(info.param.threads) + "T";
}

class SchedulerStress : public testing::TestWithParam<StressParam> {};

// Busy-wait for ~n LCG steps without tripping C++20 volatile deprecation:
// the volatile sink keeps the loop from being optimized away.
void spin(int n) {
  std::uint64_t acc = 1;
  for (int s = 0; s < n; ++s) {
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  }
  volatile std::uint64_t sink = acc;
  (void)sink;
}

// Every task runs exactly once, with up to 4 random backward dependencies
// (some already finished by submission time, racing the workers) and random
// priorities. Submission deliberately overlaps execution: no barriers.
TEST_P(SchedulerStress, RandomDagRunsEveryTaskExactlyOnce) {
  const auto [threads, policy] = GetParam();
  const int n_tasks = 4000;
  std::mt19937 rng(12345u + static_cast<unsigned>(threads));
  std::uniform_int_distribution<int> n_deps_dist(0, 4);
  std::uniform_int_distribution<int> prio_dist(-100, 100);

  std::vector<std::atomic<int>> runs(n_tasks);
  for (auto& r : runs) r.store(0, std::memory_order_relaxed);

  {
    TaskGraph g({threads, false, policy});
    std::vector<TaskId> ids;
    ids.reserve(n_tasks);
    for (int i = 0; i < n_tasks; ++i) {
      std::vector<TaskId> deps;
      if (i > 0) {
        std::uniform_int_distribution<int> pick(0, i - 1);
        for (int d = n_deps_dist(rng); d > 0; --d) {
          deps.push_back(ids[static_cast<std::size_t>(pick(rng))]);
        }
      }
      TaskOptions opts;
      opts.priority = prio_dist(rng);
      const int self = i;
      ids.push_back(g.submit(deps, opts, [&runs, self] {
        runs[static_cast<std::size_t>(self)].fetch_add(
            1, std::memory_order_relaxed);
      }));
    }
    g.wait();
    for (int i = 0; i < n_tasks; ++i) {
      ASSERT_EQ(runs[static_cast<std::size_t>(i)].load(), 1)
          << "task " << i << " did not run exactly once";
    }
  }  // destructor joins workers with no pending work
}

// With tracing on, every registered edge must be witnessed by the recorded
// timestamps: the predecessor ends before (or when) the successor starts.
TEST_P(SchedulerStress, TraceRespectsEveryEdge) {
  const auto [threads, policy] = GetParam();
  const int n_tasks = 2000;
  std::mt19937 rng(777u + static_cast<unsigned>(threads));
  std::uniform_int_distribution<int> n_deps_dist(0, 3);
  std::uniform_int_distribution<int> prio_dist(0, 10);

  TaskGraph g({threads, true, policy});
  std::vector<TaskId> ids;
  ids.reserve(n_tasks);
  std::atomic<std::uint64_t> sink{0};
  for (int i = 0; i < n_tasks; ++i) {
    std::vector<TaskId> deps;
    if (i > 0) {
      std::uniform_int_distribution<int> pick(0, i - 1);
      for (int d = n_deps_dist(rng); d > 0; --d) {
        deps.push_back(ids[static_cast<std::size_t>(pick(rng))]);
      }
    }
    TaskOptions opts;
    opts.priority = prio_dist(rng);
    ids.push_back(g.submit(deps, opts, [&sink] {
      sink.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  g.wait();

  const auto trace = g.trace();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(n_tasks));
  for (int i = 0; i < n_tasks; ++i) {
    EXPECT_EQ(trace[static_cast<std::size_t>(i)].id, ids[static_cast<std::size_t>(i)]);
  }
  const auto edges = g.edges();
  EXPECT_FALSE(edges.empty());
  for (const auto& e : edges) {
    const auto& pred = trace[static_cast<std::size_t>(e.from)];
    const auto& succ = trace[static_cast<std::size_t>(e.to)];
    ASSERT_LE(pred.end_ns, succ.start_ns)
        << "edge " << e.from << " -> " << e.to
        << " violated: pred ran [" << pred.start_ns << ", " << pred.end_ns
        << "], succ ran [" << succ.start_ns << ", " << succ.end_ns << "]";
  }
}

// Tasks publish plain (non-atomic) values that their successors read. The
// other tests' bodies only touch std::atomic counters, which ThreadSanitizer
// always considers synchronized — a publication path missing its
// acquire/release edge would go unnoticed there. Here every cross-task read
// is of ordinary memory, so TSAN flags any dispatch that does not
// happen-after the predecessor's completion (e.g. a broken sentinel-drop
// short-circuit in submit()). The final serial recompute also proves the
// dependency-ordered dataflow produced the right values.
TEST_P(SchedulerStress, PlainDataFlowsAcrossEdges) {
  const auto [threads, policy] = GetParam();
  const int n_tasks = 3000;
  std::mt19937 rng(4242u + static_cast<unsigned>(threads));
  std::uniform_int_distribution<int> n_deps_dist(0, 4);
  std::uniform_int_distribution<int> prio_dist(-50, 50);

  std::vector<std::uint64_t> value(n_tasks, 0);  // plain memory, no atomics
  std::vector<std::vector<int>> preds(n_tasks);

  {
    TaskGraph g({threads, false, policy});
    std::vector<TaskId> ids;
    ids.reserve(n_tasks);
    for (int i = 0; i < n_tasks; ++i) {
      std::vector<TaskId> deps;
      if (i > 0) {
        std::uniform_int_distribution<int> pick(0, i - 1);
        for (int d = n_deps_dist(rng); d > 0; --d) {
          const int p = pick(rng);
          deps.push_back(ids[static_cast<std::size_t>(p)]);
          preds[static_cast<std::size_t>(i)].push_back(p);
        }
      }
      TaskOptions opts;
      opts.priority = prio_dist(rng);
      const int self = i;
      ids.push_back(g.submit(deps, opts, [&value, &preds, self] {
        std::uint64_t v = static_cast<std::uint64_t>(self) + 1;
        for (int p : preds[static_cast<std::size_t>(self)]) {
          v += 0x9e3779b97f4a7c15ull * value[static_cast<std::size_t>(p)];
        }
        value[static_cast<std::size_t>(self)] = v;
      }));
    }
    g.wait();
  }

  // Each slot is written exactly once, so recomputing from the final array
  // reproduces what each task must have read through a correctly ordered
  // dependency edge.
  for (int i = 0; i < n_tasks; ++i) {
    std::uint64_t expect = static_cast<std::uint64_t>(i) + 1;
    for (int p : preds[static_cast<std::size_t>(i)]) {
      expect += 0x9e3779b97f4a7c15ull * value[static_cast<std::size_t>(p)];
    }
    ASSERT_EQ(value[static_cast<std::size_t>(i)], expect)
        << "task " << i << " read a stale or unordered predecessor value";
  }
}

// Hammers the sentinel-drop path in submit(): a producer races to complete
// exactly while its consumer is being registered, so the submission thread
// repeatedly (measured: ~20 times per run) observes unresolved == 1 written
// by the completer's fetch_sub rather than by its own sentinel store, and
// dispatches through the short-circuit. The producer publishes a plain
// value its consumer reads, so that load must be acquire to synchronize
// with the completer's release RMW. Note TSAN alone is not a reliable
// oracle for this one edge: the completing worker's next queue/inbox lock
// usually creates an incidental happens-before that masks a missing
// acquire, which is how the original relaxed-load bug survived a TSAN-clean
// run. The value check below is the hardware-level backstop. Producer spin
// times sweep 0..~1µs so completions land in every phase of the
// registration window regardless of scheduler timing.
TEST_P(SchedulerStress, SentinelDropRacesCompletion) {
  const auto [threads, policy] = GetParam();
  if (threads < 2) return;  // needs a worker racing the submission thread
  const int n_pairs = 4000;
  std::mt19937 rng(99u + static_cast<unsigned>(threads));
  std::uniform_int_distribution<int> spin_dist(0, 256);

  std::vector<std::uint64_t> val(n_pairs, 0);  // plain memory, no atomics
  TaskGraph g({threads, false, policy});

  // A pool of long-finished tasks used as padding dependencies: registering
  // them takes the lock-free fast path but still stretches the distance
  // between the producer's registration and the sentinel drop.
  std::vector<TaskId> pad;
  for (int i = 0; i < 4; ++i) pad.push_back(g.submit({}, {}, [] {}));

  for (int i = 0; i < n_pairs; ++i) {
    const int self = i;
    const int pre = spin_dist(rng);
    const int post = spin_dist(rng);
    const TaskId producer = g.submit({}, {}, [&val, self, pre, post] {
      spin(pre);
      val[static_cast<std::size_t>(self)] =
          0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(self) + 1);
      spin(post);
    });
    std::vector<TaskId> deps{producer, pad[0], pad[1], pad[2], pad[3]};
    g.submit(deps, {}, [&val, self] {
      const std::uint64_t got = val[static_cast<std::size_t>(self)];
      const std::uint64_t want =
          0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(self) + 1);
      if (got != want) {
        throw std::runtime_error("consumer " + std::to_string(self) +
                                 " read a stale producer value");
      }
    });
  }
  g.wait();  // rethrows if any consumer saw a stale value
}

// Deep chains interleaved with wide fans: completion-side dispatch (chains)
// races submission-side dispatch (fans) on the same ready structures.
TEST_P(SchedulerStress, ChainsInterleavedWithFans) {
  const auto [threads, policy] = GetParam();
  const int n_chains = 8;
  const int chain_len = 250;
  TaskGraph g({threads, false, policy});
  std::vector<std::atomic<int>> progress(n_chains);
  for (auto& p : progress) p.store(0, std::memory_order_relaxed);
  std::atomic<int> fan_runs{0};

  std::vector<TaskId> tail(n_chains, kNoTask);
  for (int step = 0; step < chain_len; ++step) {
    for (int c = 0; c < n_chains; ++c) {
      std::vector<TaskId> deps;
      if (tail[static_cast<std::size_t>(c)] != kNoTask) {
        deps.push_back(tail[static_cast<std::size_t>(c)]);
      }
      const int chain = c;
      const int expect = step;
      tail[static_cast<std::size_t>(c)] =
          g.submit(deps, {}, [&progress, chain, expect] {
            // Chains must advance strictly in order.
            auto& p = progress[static_cast<std::size_t>(chain)];
            int seen = p.load(std::memory_order_relaxed);
            if (seen == expect) p.store(seen + 1, std::memory_order_relaxed);
          });
    }
    // A few independent fan tasks per step keep the queues churning.
    for (int f = 0; f < 2; ++f) {
      g.submit({}, {}, [&fan_runs] {
        fan_runs.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  g.wait();
  for (int c = 0; c < n_chains; ++c) {
    EXPECT_EQ(progress[static_cast<std::size_t>(c)].load(), chain_len)
        << "chain " << c << " lost a step";
  }
  EXPECT_EQ(fan_runs.load(), chain_len * 2);
}

// A throwing task must not kill its worker: the rest of the graph drains,
// and wait() rethrows the first failure by task id.
TEST_P(SchedulerStress, ExceptionsDrainAndRethrow) {
  const auto [threads, policy] = GetParam();
  const int n_tasks = 1000;
  TaskGraph g({threads, false, policy});
  std::atomic<int> ran{0};
  for (int i = 0; i < n_tasks; ++i) {
    g.submit({}, {}, [&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 100 == 7) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(g.wait(), std::runtime_error);
  // Fast-abort: the first failure makes the rest of the DAG skip, but the
  // graph still drains — every task is accounted for as executed or
  // skipped, and at least the first failing task actually ran.
  const WorkerStats totals = g.stats().totals();
  EXPECT_EQ(totals.tasks_executed + totals.tasks_skipped, n_tasks);
  EXPECT_EQ(totals.tasks_executed, ran.load());
  // Execution order is not submission order (stealing deques pop LIFO, and
  // workers race the submitting thread), so the only guaranteed lower bound
  // is the failing task itself.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), n_tasks);
}

TEST_P(SchedulerStress, ExceptionsRunAllWithoutAbortOnError) {
  // abort_on_error = false restores the pre-fast-abort contract: every
  // task still runs, including the ones after the failures.
  const auto [threads, policy] = GetParam();
  const int n_tasks = 1000;
  TaskGraph::Config cfg;
  cfg.num_threads = threads;
  cfg.record_trace = false;
  cfg.policy = policy;
  cfg.abort_on_error = false;
  TaskGraph g(cfg);
  std::atomic<int> ran{0};
  for (int i = 0; i < n_tasks; ++i) {
    g.submit({}, {}, [&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 100 == 7) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(g.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), n_tasks);
  EXPECT_EQ(g.stats().totals().tasks_skipped, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SchedulerStress,
    testing::Values(StressParam{1, TaskGraph::Policy::CentralPriority},
                    StressParam{2, TaskGraph::Policy::CentralPriority},
                    StressParam{4, TaskGraph::Policy::CentralPriority},
                    StressParam{8, TaskGraph::Policy::CentralPriority},
                    StressParam{1, TaskGraph::Policy::WorkStealing},
                    StressParam{2, TaskGraph::Policy::WorkStealing},
                    StressParam{4, TaskGraph::Policy::WorkStealing},
                    StressParam{8, TaskGraph::Policy::WorkStealing}),
    param_name);

}  // namespace
}  // namespace camult::rt
