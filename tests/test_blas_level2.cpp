// Tests for BLAS level-2 kernels against naive references.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/level2.hpp"
#include "common/test_utils.hpp"
#include "matrix/random.hpp"

namespace camult::blas {
namespace {

using camult::test::matrices_near;

TEST(Gemv, NoTransMatchesReference) {
  Matrix a = random_matrix(7, 5, 1);
  std::vector<double> x(5), y(7), y_ref(7);
  for (int i = 0; i < 5; ++i) x[i] = i + 1;
  for (int i = 0; i < 7; ++i) y[i] = y_ref[i] = 0.5 * i;

  gemv(Trans::NoTrans, 2.0, a, x.data(), 1, 3.0, y.data(), 1);
  for (idx i = 0; i < 7; ++i) {
    double s = 0;
    for (idx j = 0; j < 5; ++j) s += a(i, j) * x[static_cast<std::size_t>(j)];
    y_ref[static_cast<std::size_t>(i)] =
        2.0 * s + 3.0 * y_ref[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < 7; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-13);
}

TEST(Gemv, TransMatchesReference) {
  Matrix a = random_matrix(7, 5, 2);
  std::vector<double> x(7), y(5), y_ref(5);
  for (int i = 0; i < 7; ++i) x[i] = i - 3;
  for (int i = 0; i < 5; ++i) y[i] = y_ref[i] = 1.0;

  gemv(Trans::Trans, -1.5, a, x.data(), 1, 0.0, y.data(), 1);
  for (idx j = 0; j < 5; ++j) {
    double s = 0;
    for (idx i = 0; i < 7; ++i) s += a(i, j) * x[static_cast<std::size_t>(i)];
    y_ref[static_cast<std::size_t>(j)] = -1.5 * s;
  }
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-13);
}

TEST(Gemv, BetaZeroOverwritesGarbage) {
  Matrix a = random_matrix(3, 3, 3);
  std::vector<double> x = {1, 1, 1};
  std::vector<double> y = {std::numeric_limits<double>::quiet_NaN(), 0, 0};
  gemv(Trans::NoTrans, 1.0, a, x.data(), 1, 0.0, y.data(), 1);
  EXPECT_FALSE(std::isnan(y[0]));
}

TEST(Ger, Rank1Update) {
  Matrix a = Matrix::zeros(4, 3);
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {5, 6, 7};
  ger(2.0, x.data(), 1, y.data(), 1, a.view());
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(a(i, j), 2.0 * x[static_cast<std::size_t>(i)] *
                                    y[static_cast<std::size_t>(j)]);
    }
  }
}

struct TrsvCase {
  Uplo uplo;
  Trans trans;
  Diag diag;
};

class TrsvTest : public ::testing::TestWithParam<TrsvCase> {};

TEST_P(TrsvTest, SolveMatchesMultiply) {
  const auto& p = GetParam();
  const idx n = 9;
  Matrix a = random_matrix(n, n, 11);
  for (idx i = 0; i < n; ++i) a(i, i) += 4.0;  // well conditioned

  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) x_true[static_cast<std::size_t>(i)] = 1.0 + 0.1 * static_cast<double>(i);

  // b = op(T) * x_true via trmv on a copy.
  std::vector<double> b = x_true;
  trmv(p.uplo, p.trans, p.diag, a, b.data(), 1);
  // Solve in place.
  trsv(p.uplo, p.trans, p.diag, a, b.data(), 1);
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)],
                x_true[static_cast<std::size_t>(i)], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsvTest,
    ::testing::Values(TrsvCase{Uplo::Lower, Trans::NoTrans, Diag::NonUnit},
                      TrsvCase{Uplo::Lower, Trans::NoTrans, Diag::Unit},
                      TrsvCase{Uplo::Lower, Trans::Trans, Diag::NonUnit},
                      TrsvCase{Uplo::Lower, Trans::Trans, Diag::Unit},
                      TrsvCase{Uplo::Upper, Trans::NoTrans, Diag::NonUnit},
                      TrsvCase{Uplo::Upper, Trans::NoTrans, Diag::Unit},
                      TrsvCase{Uplo::Upper, Trans::Trans, Diag::NonUnit},
                      TrsvCase{Uplo::Upper, Trans::Trans, Diag::Unit}));

class TrmvTest : public ::testing::TestWithParam<TrsvCase> {};

TEST_P(TrmvTest, MatchesExplicitTriangleMultiply) {
  const auto& p = GetParam();
  const idx n = 8;
  Matrix a = random_matrix(n, n, 13);
  Matrix t = test::reference_triangle(a, p.uplo, p.diag);

  std::vector<double> x(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = static_cast<double>(i) - 2.5;
  std::vector<double> x_ref(static_cast<std::size_t>(n), 0.0);
  for (idx i = 0; i < n; ++i) {
    double s = 0;
    for (idx j = 0; j < n; ++j) {
      const double tij = p.trans == Trans::NoTrans ? t(i, j) : t(j, i);
      s += tij * x[static_cast<std::size_t>(j)];
    }
    x_ref[static_cast<std::size_t>(i)] = s;
  }
  trmv(p.uplo, p.trans, p.diag, a, x.data(), 1);
  for (idx i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                x_ref[static_cast<std::size_t>(i)], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrmvTest,
    ::testing::Values(TrsvCase{Uplo::Lower, Trans::NoTrans, Diag::NonUnit},
                      TrsvCase{Uplo::Lower, Trans::NoTrans, Diag::Unit},
                      TrsvCase{Uplo::Lower, Trans::Trans, Diag::NonUnit},
                      TrsvCase{Uplo::Lower, Trans::Trans, Diag::Unit},
                      TrsvCase{Uplo::Upper, Trans::NoTrans, Diag::NonUnit},
                      TrsvCase{Uplo::Upper, Trans::NoTrans, Diag::Unit},
                      TrsvCase{Uplo::Upper, Trans::Trans, Diag::NonUnit},
                      TrsvCase{Uplo::Upper, Trans::Trans, Diag::Unit}));

}  // namespace
}  // namespace camult::blas
