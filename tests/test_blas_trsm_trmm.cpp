// trsm/trmm correctness across all side/uplo/trans/diag combinations,
// including sizes that cross the recursive base-case threshold.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::blas {
namespace {

using camult::test::matrices_near;
using camult::test::reference_gemm;
using camult::test::reference_triangle;
using camult::test::reference_trsm;

struct Combo {
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
};

std::vector<Combo> all_combos() {
  std::vector<Combo> v;
  for (Side s : {Side::Left, Side::Right}) {
    for (Uplo u : {Uplo::Lower, Uplo::Upper}) {
      for (Trans t : {Trans::NoTrans, Trans::Trans}) {
        for (Diag d : {Diag::NonUnit, Diag::Unit}) v.push_back({s, u, t, d});
      }
    }
  }
  return v;
}

class TrsmAllCombos : public ::testing::TestWithParam<std::tuple<idx, idx>> {};

TEST_P(TrsmAllCombos, MatchesReference) {
  auto [m, n] = GetParam();
  int seed = 0;
  for (const Combo& c : all_combos()) {
    const idx n_tri = (c.side == Side::Left) ? m : n;
    Matrix a = random_matrix(n_tri, n_tri, 300 + seed);
    for (idx i = 0; i < n_tri; ++i) a(i, i) += 3.0;  // well conditioned
    Matrix b = random_matrix(m, n, 400 + seed);

    Matrix x = b;
    trsm(c.side, c.uplo, c.trans, c.diag, 1.5, a, x.view());
    Matrix x_ref = reference_trsm(c.side, c.uplo, c.trans, c.diag, 1.5, a, b);
    // Unit-diagonal random triangles are ill conditioned, so solutions grow
    // large; compare with a tolerance relative to the solution magnitude.
    const double tol =
        1e-13 * std::max(1.0, norm_max(x_ref)) * static_cast<double>(n_tri);
    EXPECT_TRUE(matrices_near(x, x_ref, tol))
        << "side=" << (c.side == Side::Right) << " uplo="
        << (c.uplo == Uplo::Upper) << " trans=" << (c.trans == Trans::Trans)
        << " diag=" << (c.diag == Diag::Unit) << " m=" << m << " n=" << n;
    ++seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrsmAllCombos,
                         ::testing::Values(std::tuple<idx, idx>{1, 1},
                                           std::tuple<idx, idx>{5, 7},
                                           std::tuple<idx, idx>{17, 9},
                                           std::tuple<idx, idx>{63, 65},
                                           std::tuple<idx, idx>{64, 64},
                                           std::tuple<idx, idx>{100, 130},
                                           std::tuple<idx, idx>{129, 40}));

class TrmmAllCombos : public ::testing::TestWithParam<std::tuple<idx, idx>> {};

TEST_P(TrmmAllCombos, MatchesExplicitMultiply) {
  auto [m, n] = GetParam();
  int seed = 0;
  for (const Combo& c : all_combos()) {
    const idx n_tri = (c.side == Side::Left) ? m : n;
    Matrix a = random_matrix(n_tri, n_tri, 500 + seed);
    Matrix b = random_matrix(m, n, 600 + seed);

    Matrix x = b;
    trmm(c.side, c.uplo, c.trans, c.diag, 2.0, a, x.view());

    // Reference: explicit triangle times B.
    Matrix t = reference_triangle(a, c.uplo, c.diag);
    Matrix x_ref = Matrix::zeros(m, n);
    if (c.side == Side::Left) {
      reference_gemm(c.trans, Trans::NoTrans, 2.0, t, b, 0.0, x_ref.view());
    } else {
      reference_gemm(Trans::NoTrans, c.trans, 2.0, b, t, 0.0, x_ref.view());
    }
    EXPECT_TRUE(matrices_near(x, x_ref, 1e-11))
        << "side=" << (c.side == Side::Right) << " uplo="
        << (c.uplo == Uplo::Upper) << " trans=" << (c.trans == Trans::Trans)
        << " diag=" << (c.diag == Diag::Unit) << " m=" << m << " n=" << n;
    ++seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrmmAllCombos,
                         ::testing::Values(std::tuple<idx, idx>{1, 1},
                                           std::tuple<idx, idx>{6, 8},
                                           std::tuple<idx, idx>{16, 11},
                                           std::tuple<idx, idx>{63, 65},
                                           std::tuple<idx, idx>{64, 64},
                                           std::tuple<idx, idx>{101, 90},
                                           std::tuple<idx, idx>{128, 33}));

TEST(Trsm, TriangularOppositeHalfNotRead) {
  // Poison the unreferenced triangle with NaN: trsm must not read it.
  const idx n = 40;
  Matrix a = random_matrix(n, n, 9);
  for (idx i = 0; i < n; ++i) a(i, i) += 3.0;
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < j; ++i) {
      a(i, j) = std::numeric_limits<double>::quiet_NaN();  // upper half
    }
  }
  Matrix b = random_matrix(n, 5, 10);
  trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::NonUnit, 1.0, a,
       b.view());
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < n; ++i) EXPECT_FALSE(std::isnan(b(i, j)));
  }
}

TEST(Trmm, UnitDiagonalNotRead) {
  const idx n = 24;
  Matrix a = random_matrix(n, n, 11);
  for (idx i = 0; i < n; ++i) {
    a(i, i) = std::numeric_limits<double>::quiet_NaN();
  }
  Matrix b = random_matrix(n, 3, 12);
  trmm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, 1.0, a, b.view());
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < n; ++i) EXPECT_FALSE(std::isnan(b(i, j)));
  }
}

TEST(Trsm, EmptyRhsIsNoop) {
  Matrix a = random_matrix(4, 4, 1);
  Matrix b(4, 0);
  trsm(Side::Left, Uplo::Lower, Trans::NoTrans, Diag::Unit, 1.0, a, b.view());
  SUCCEED();
}

TEST(Syrk, MatchesGemmOnTriangle) {
  const idx n = 20, k = 7;
  Matrix a = random_matrix(n, k, 31);
  Matrix c = random_matrix(n, n, 32);
  Matrix c_before = c;
  Matrix c_full = c;

  syrk(Uplo::Lower, Trans::NoTrans, 2.0, a, 0.5, c.view());
  reference_gemm(Trans::NoTrans, Trans::Trans, 2.0, a, a, 0.5, c_full.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = j; i < n; ++i) EXPECT_NEAR(c(i, j), c_full(i, j), 1e-12);
    for (idx i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(c(i, j), c_before(i, j))
        << "upper triangle must not be modified";
  }
}

// A NaN anywhere in a referenced A row must poison the referenced triangle
// even when the scaled row value t is exactly zero — the NoTrans branch
// used to skip t == 0.0 terms, hiding NaNs that the Trans branch (and gemm)
// propagate. Both branches must agree.
TEST(Syrk, NanPropagatesThroughZeroTerms) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const idx n = 9, k = 5;
  Matrix a = random_matrix(n, k, 51);
  a(2, 0) = 0.0;  // t = alpha * a(j=2, p=0) == 0 in the NoTrans branch
  a(4, 0) = nan;  // ... multiplied against this NaN
  Matrix c = random_matrix(n, n, 52);
  syrk(Uplo::Lower, Trans::NoTrans, 1.0, a, 1.0, c.view());
  EXPECT_TRUE(std::isnan(c(4, 2)));  // 0 * NaN term lands here
  EXPECT_TRUE(std::isnan(c(4, 4)));  // diagonal sees NaN^2
  EXPECT_FALSE(std::isnan(c(3, 2)));

  // Trans variant on the transposed data must flag the mirrored element.
  Matrix at(k, n);
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i < k; ++i) at(i, j) = a(j, i);
  }
  Matrix ct = random_matrix(n, n, 53);
  syrk(Uplo::Upper, Trans::Trans, 1.0, at, 1.0, ct.view());
  EXPECT_TRUE(std::isnan(ct(2, 4)));
  EXPECT_FALSE(std::isnan(ct(2, 3)));
}

TEST(Syrk, TransVariantUpper) {
  const idx n = 11, k = 9;
  Matrix a = random_matrix(k, n, 41);
  Matrix c = random_matrix(n, n, 42);
  Matrix c_before = c;
  Matrix c_full = c;

  syrk(Uplo::Upper, Trans::Trans, 1.0, a, 0.0, c.view());
  reference_gemm(Trans::Trans, Trans::NoTrans, 1.0, a, a, 0.0, c_full.view());
  for (idx j = 0; j < n; ++j) {
    for (idx i = 0; i <= j; ++i) EXPECT_NEAR(c(i, j), c_full(i, j), 1e-12);
    for (idx i = j + 1; i < n; ++i) EXPECT_DOUBLE_EQ(c(i, j), c_before(i, j));
  }
}

}  // namespace
}  // namespace camult::blas
