// Structured triangle-triangle QR kernel (tpqrt) tests: agreement with the
// dense stacked kernel, apply round trips, and end-to-end TSQR/CAQR with
// structured nodes enabled.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "core/caqr.hpp"
#include "core/tpqrt.hpp"
#include "core/tsqr.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult::core {
namespace {

using camult::test::kResidualThreshold;
using camult::test::matrices_near;

Matrix random_upper(idx b, std::uint64_t seed, double diag_boost = 0.0) {
  Matrix r = random_matrix(b, b, seed);
  for (idx j = 0; j < b; ++j) {
    r(j, j) += diag_boost;
    for (idx i = j + 1; i < b; ++i) r(i, j) = 0.0;
  }
  return r;
}

TEST(Tpqrt, RMatchesDenseKernel) {
  for (idx b : {1, 2, 5, 16, 33, 100}) {
    Matrix r1 = random_upper(b, 600 + b);
    Matrix r2 = random_upper(b, 700 + b);

    // Structured.
    Matrix r1s = r1;
    TriTriFactors f = tpqrt_tri(r1s.view(), r2.view());

    // Dense reference: stack and geqr2.
    Matrix stack = Matrix::zeros(2 * b, b);
    copy_into(r1.view(), stack.view().rows_range(0, b));
    copy_into(r2.view(), stack.view().rows_range(b, b));
    std::vector<double> tau;
    lapack::geqr2(stack.view(), tau);

    for (idx j = 0; j < b; ++j) {
      for (idx i = 0; i <= j; ++i) {
        EXPECT_NEAR(r1s(i, j), stack(i, j),
                    1e-12 * std::max(1.0, std::abs(stack(i, j))))
            << "b=" << b << " at (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Tpqrt, StrictlyLowerOfR1NotTouched) {
  const idx b = 12;
  Matrix r1 = random_matrix(b, b, 801);  // junk below the diagonal
  Matrix r1_before = r1;
  Matrix r2 = random_upper(b, 802);
  tpqrt_tri(r1.view(), r2.view());
  for (idx j = 0; j < b; ++j) {
    for (idx i = j + 1; i < b; ++i) {
      EXPECT_EQ(r1(i, j), r1_before(i, j));
    }
  }
}

TEST(Tpqrt, ApplyRoundTrip) {
  const idx b = 20;
  Matrix r1 = random_upper(b, 803);
  Matrix r2 = random_upper(b, 804);
  TriTriFactors f = tpqrt_tri(r1.view(), r2.view());

  Matrix c1 = random_matrix(b, 7, 805);
  Matrix c2 = random_matrix(b, 7, 806);
  Matrix c1o = c1, c2o = c2;
  tpmqrt_tri(blas::Trans::Trans, f, c1.view(), c2.view());
  tpmqrt_tri(blas::Trans::NoTrans, f, c1.view(), c2.view());
  EXPECT_TRUE(matrices_near(c1, c1o, 1e-12));
  EXPECT_TRUE(matrices_near(c2, c2o, 1e-12));
}

TEST(Tpqrt, ApplyMatchesDenseKernelApply) {
  const idx b = 16;
  Matrix r1 = random_upper(b, 807);
  Matrix r2 = random_upper(b, 808);

  // Embed the triangles in a 2b x b "matrix" and run both node kernels.
  Matrix a_s = Matrix::zeros(2 * b, b);
  copy_into(r1.view(), a_s.view().rows_range(0, b));
  copy_into(r2.view(), a_s.view().rows_range(b, b));
  Matrix a_d = a_s;

  TsqrNode sn = tsqr_node_kernel_tri(a_s.view(), 0, b, b);
  TsqrNode dn = tsqr_node_kernel(a_d.view(), {0, b}, b);

  Matrix c_s = random_matrix(2 * b, 5, 809);
  Matrix c_d = c_s;
  tsqr_node_apply(blas::Trans::Trans, sn, c_s.view());
  tsqr_node_apply(blas::Trans::Trans, dn, c_d.view());
  EXPECT_TRUE(matrices_near(c_s, c_d, 1e-11 * std::max(1.0, norm_max(c_d))));
}

TEST(Tpqrt, TsqrStructuredMatchesDense) {
  const idx m = 320, n = 24;
  Matrix a = random_matrix(m, n, 811);
  Matrix f1 = a, f2 = a;
  TsqrOptions od;
  od.tr = 8;
  od.tree = ReductionTree::Binary;
  od.structured_nodes = false;
  TsqrOptions os = od;
  os.structured_nodes = true;

  TsqrFactors fd = tsqr_factor(f1.view(), od);
  TsqrFactors fs = tsqr_factor(f2.view(), os);
  Matrix rd = tsqr_extract_r(f1.view(), fd);
  Matrix rs = tsqr_extract_r(f2.view(), fs);
  EXPECT_TRUE(matrices_near(rd, rs, 1e-11 * std::max(1.0, norm_max(rd))));

  // Both produce orthogonal Q and small residual.
  Matrix qs = tsqr_explicit_q(f2.view(), fs);
  EXPECT_LT(lapack::orthogonality_residual(qs), kResidualThreshold);
}

TEST(Tpqrt, CaqrStructuredEndToEnd) {
  const idx m = 300, n = 120;
  Matrix a = random_matrix(m, n, 813);
  Matrix fact = a;
  CaqrOptions o;
  o.b = 30;
  o.tr = 4;
  o.tree = ReductionTree::Binary;
  o.structured_nodes = true;
  o.num_threads = 3;
  CaqrResult res = caqr_factor(fact.view(), o);
  EXPECT_LT(caqr_residual(a, fact, res), kResidualThreshold);
  Matrix q = caqr_explicit_q(fact.view(), res);
  EXPECT_LT(lapack::orthogonality_residual(q), kResidualThreshold);
}

TEST(Tpqrt, SingularTrianglesHandled) {
  const idx b = 8;
  Matrix r1 = Matrix::zeros(b, b);  // entirely zero triangle
  Matrix r2 = random_upper(b, 815);
  TriTriFactors f = tpqrt_tri(r1.view(), r2.view());
  // R^T R == r2^T r2 must still hold.
  Matrix rtr = Matrix::zeros(b, b);
  Matrix ref = Matrix::zeros(b, b);
  Matrix r_new = Matrix::zeros(b, b);
  for (idx j = 0; j < b; ++j) {
    for (idx i = 0; i <= j; ++i) r_new(i, j) = r1(i, j);
  }
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, r_new, r_new, 0.0,
             rtr.view());
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, r2, r2, 0.0,
             ref.view());
  EXPECT_TRUE(matrices_near(rtr, ref, 1e-10 * std::max(1.0, norm_max(ref))));
}

}  // namespace
}  // namespace camult::core
