// Tests for the matrix substrate: views, ownership, norms, permutations,
// random generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/test_utils.hpp"
#include "matrix/matrix.hpp"
#include "matrix/norms.hpp"
#include "matrix/permutation.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

TEST(Matrix, ZerosAndIdentity) {
  Matrix z = Matrix::zeros(3, 4);
  for (idx j = 0; j < 4; ++j) {
    for (idx i = 0; i < 3; ++i) EXPECT_EQ(z(i, j), 0.0);
  }
  Matrix e = Matrix::identity(4, 3);
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < 4; ++i) EXPECT_EQ(e(i, j), i == j ? 1.0 : 0.0);
  }
}

TEST(Matrix, EmptyMatrixIsSafe) {
  Matrix m(0, 0);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0);
  Matrix n(5, 0);
  EXPECT_TRUE(n.empty());
  Matrix c = n;  // copy of empty
  EXPECT_TRUE(c.empty());
}

TEST(Matrix, CopyIsDeep) {
  Matrix a = random_matrix(5, 6, 1);
  Matrix b = a;
  b(2, 3) = 99.0;
  EXPECT_NE(a(2, 3), 99.0);
  EXPECT_NE(a.data(), b.data());
}

TEST(Matrix, MoveTransfersOwnership) {
  Matrix a = random_matrix(5, 6, 1);
  const double* p = a.data();
  Matrix b = std::move(a);
  EXPECT_EQ(b.data(), p);
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_EQ(a.data()[0], 1);
  EXPECT_EQ(a.data()[1], 2);
  EXPECT_EQ(a.data()[2], 3);
  EXPECT_EQ(a.data()[3], 4);
}

TEST(Matrix, StorageIsAligned) {
  for (idx n : {1, 3, 17, 64}) {
    Matrix a(n, n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % 64, 0u);
  }
}

TEST(MatrixView, BlockAddressesCorrectElements) {
  Matrix a = random_matrix(8, 8, 42);
  MatrixView blk = a.view().block(2, 3, 4, 5);
  EXPECT_EQ(blk.rows(), 4);
  EXPECT_EQ(blk.cols(), 5);
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < 4; ++i) EXPECT_EQ(blk(i, j), a(2 + i, 3 + j));
  }
}

TEST(MatrixView, NestedBlocksCompose) {
  Matrix a = random_matrix(10, 10, 7);
  MatrixView outer = a.view().block(1, 2, 8, 7);
  MatrixView inner = outer.block(3, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), a(4, 3));
  EXPECT_EQ(inner(1, 1), a(5, 4));
}

TEST(MatrixView, TrailingView) {
  Matrix a = random_matrix(6, 6, 3);
  MatrixView t = a.view().trailing(2, 3);
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t(0, 0), a(2, 3));
}

TEST(MatrixView, WritesThroughView) {
  Matrix a = Matrix::zeros(4, 4);
  a.view().block(1, 1, 2, 2)(0, 1) = 5.0;
  EXPECT_EQ(a(1, 2), 5.0);
}

TEST(MatrixView, ZeroExtentBlocksAllowed) {
  Matrix a = random_matrix(4, 4, 9);
  MatrixView v = a.view().block(2, 2, 0, 0);
  EXPECT_TRUE(v.empty());
  MatrixView w = a.view().block(4, 0, 0, 4);
  EXPECT_TRUE(w.empty());
}

TEST(MatrixView, CopyInto) {
  Matrix a = random_matrix(5, 4, 11);
  Matrix b = Matrix::zeros(5, 4);
  copy_into(a.view(), b.view());
  EXPECT_EQ(test::max_diff(a, b), 0.0);
}

TEST(MatrixView, FillAndSetIdentity) {
  Matrix a = random_matrix(4, 5, 13);
  fill(a.view().block(1, 1, 2, 2), 7.0);
  EXPECT_EQ(a(1, 1), 7.0);
  EXPECT_EQ(a(2, 2), 7.0);
  set_identity(a.view());
  for (idx j = 0; j < 5; ++j) {
    for (idx i = 0; i < 4; ++i) EXPECT_EQ(a(i, j), i == j ? 1.0 : 0.0);
  }
}

TEST(Norms, KnownValues) {
  Matrix a = Matrix::zeros(2, 2);
  a(0, 0) = 3.0;
  a(1, 0) = -4.0;
  a(0, 1) = 0.0;
  a(1, 1) = 12.0;
  EXPECT_DOUBLE_EQ(norm_one(a), 12.0);   // max column sum: |{-4,12}| col1=12? col0=7
  EXPECT_DOUBLE_EQ(norm_inf(a), 16.0);   // row 1: 4 + 12
  EXPECT_DOUBLE_EQ(norm_max(a), 12.0);
  EXPECT_DOUBLE_EQ(norm_fro(a), 13.0);   // sqrt(9+16+144)
}

TEST(Norms, FrobeniusAvoidsOverflow) {
  Matrix a(1, 2);
  a(0, 0) = 1e300;
  a(0, 1) = 1e300;
  EXPECT_TRUE(std::isfinite(norm_fro(a)));
  EXPECT_NEAR(norm_fro(a) / 1e300, std::sqrt(2.0), 1e-12);
}

TEST(Norms, EmptyMatrix) {
  Matrix a(0, 0);
  EXPECT_EQ(norm_fro(a), 0.0);
  EXPECT_EQ(norm_max(a), 0.0);
}

TEST(Norms, NonFiniteDetection) {
  Matrix a = random_matrix(3, 3, 5);
  EXPECT_FALSE(has_non_finite(a));
  a(1, 2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(has_non_finite(a));
  a(1, 2) = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(has_non_finite(a));
}

TEST(Permutation, IpivRoundTrip) {
  // ipiv from a known swap sequence: swap(0,2), swap(1,1), swap(2,3).
  PivotVector ipiv = {2, 1, 3};
  Permutation perm = ipiv_to_permutation(ipiv, 4);
  EXPECT_TRUE(is_valid_permutation(perm));
  // Trace the swaps by hand: [0123] -> [2103] -> [2103] -> [2130].
  EXPECT_EQ(perm, (Permutation{2, 1, 3, 0}));
}

TEST(Permutation, InverseComposesToIdentity) {
  PivotVector ipiv = {4, 3, 2, 4, 4};
  Permutation perm = ipiv_to_permutation(ipiv, 5);
  Permutation inv = invert_permutation(perm);
  Permutation id = compose_permutations(perm, inv);
  EXPECT_EQ(id, identity_permutation(5));
  Permutation id2 = compose_permutations(inv, perm);
  EXPECT_EQ(id2, identity_permutation(5));
}

TEST(Permutation, ApplyRowPermutation) {
  Matrix a = random_matrix(4, 3, 17);
  Permutation perm = {2, 0, 3, 1};
  Matrix pa = permute_rows(perm, a);
  for (idx j = 0; j < 3; ++j) {
    for (idx i = 0; i < 4; ++i) {
      EXPECT_EQ(pa(i, j), a(perm[static_cast<std::size_t>(i)], j));
    }
  }
}

TEST(Permutation, Validation) {
  EXPECT_TRUE(is_valid_permutation({0, 1, 2}));
  EXPECT_FALSE(is_valid_permutation({0, 0, 2}));
  EXPECT_FALSE(is_valid_permutation({0, 3, 1}));
}

TEST(Random, Deterministic) {
  Matrix a = random_matrix(6, 6, 123);
  Matrix b = random_matrix(6, 6, 123);
  EXPECT_EQ(test::max_diff(a, b), 0.0);
  Matrix c = random_matrix(6, 6, 124);
  EXPECT_GT(test::max_diff(a, c), 0.0);
}

TEST(Random, UniformRange) {
  Matrix a = random_matrix(50, 50, 99);
  EXPECT_LE(norm_max(a), 1.0);
  EXPECT_GT(norm_max(a), 0.5);  // overwhelmingly likely
}

TEST(Random, DistinctMagnitudes) {
  Matrix a = random_distinct_magnitude_matrix(8, 8, 21);
  std::vector<double> mags;
  for (idx j = 0; j < 8; ++j) {
    for (idx i = 0; i < 8; ++i) mags.push_back(std::abs(a(i, j)));
  }
  std::sort(mags.begin(), mags.end());
  for (std::size_t i = 1; i < mags.size(); ++i) {
    EXPECT_LT(mags[i - 1], mags[i]);
  }
}

TEST(Random, GrowthMatrixShape) {
  Matrix a = gepp_growth_matrix(5);
  EXPECT_EQ(a(0, 0), 1.0);
  EXPECT_EQ(a(4, 0), -1.0);
  EXPECT_EQ(a(0, 4), 1.0);
  EXPECT_EQ(a(2, 3), 0.0);
}

TEST(Random, RankDeficientHasGivenRank) {
  Matrix a = random_rank_deficient_matrix(10, 8, 3, 5);
  // Rank <= 3: any 4x4 determinant-ish check is overkill; instead verify
  // that columns 3..8 are linear combinations by checking the matrix has
  // small singular values — approximated via QR in the LU/QR test suites.
  // Here just check shape and determinism.
  EXPECT_EQ(a.rows(), 10);
  EXPECT_EQ(a.cols(), 8);
  Matrix b = random_rank_deficient_matrix(10, 8, 3, 5);
  EXPECT_EQ(test::max_diff(a, b), 0.0);
}


TEST(Matrix, SelfAssignmentIsSafe) {
  Matrix a = random_matrix(6, 6, 77);
  Matrix b = a;
  a = *&a;  // self-assignment through an alias
  EXPECT_EQ(test::max_diff(a, b), 0.0);
}

}  // namespace
}  // namespace camult
