// Solver driver tests: getrs (both transposes), gesv, qr_solve, and the
// CALU/CAQR one-call drivers; backward-error residuals and failure paths.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "common/test_utils.hpp"
#include "core/drivers.hpp"
#include "lapack/lapack.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"

namespace camult {
namespace {

constexpr double kTol = 100.0;  // scaled units of n*eps

Matrix multiply(blas::Trans ta, ConstMatrixView a, ConstMatrixView x) {
  Matrix b((ta == blas::Trans::NoTrans) ? a.rows() : a.cols(), x.cols());
  blas::gemm(ta, blas::Trans::NoTrans, 1.0, a, x, 0.0, b.view());
  return b;
}

TEST(Getrs, NoTransSolves) {
  const idx n = 90;
  Matrix a = random_matrix(n, n, 1);
  Matrix x_true = random_matrix(n, 4, 2);
  Matrix b = multiply(blas::Trans::NoTrans, a, x_true);

  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(lapack::getrf(lu.view(), ipiv), 0);
  lapack::getrs(blas::Trans::NoTrans, lu, ipiv, b.view());
  EXPECT_LT(lapack::solve_residual(a, b, multiply(blas::Trans::NoTrans, a,
                                                  x_true)),
            kTol);
  EXPECT_LT(test::max_diff(b, x_true), 1e-8 * norm_max(x_true) * n);
}

TEST(Getrs, TransSolves) {
  const idx n = 70;
  Matrix a = random_matrix(n, n, 3);
  Matrix x_true = random_matrix(n, 3, 4);
  Matrix b = multiply(blas::Trans::Trans, a, x_true);

  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(lapack::getrf(lu.view(), ipiv), 0);
  lapack::getrs(blas::Trans::Trans, lu, ipiv, b.view());
  EXPECT_LT(test::max_diff(b, x_true), 1e-8 * std::max(1.0, norm_max(x_true)) * n);
}

TEST(Getrs, TransIsInverseOfNoTrans) {
  const idx n = 50;
  Matrix a = random_matrix(n, n, 5);
  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(lapack::getrf(lu.view(), ipiv), 0);

  // Solve A^T (A x) = A^T b should equal A^{-1}... instead check round
  // trip: y = A x via gemm, solve, recover x.
  Matrix x = random_matrix(n, 2, 6);
  Matrix y = multiply(blas::Trans::NoTrans, a, x);
  lapack::getrs(blas::Trans::NoTrans, lu, ipiv, y.view());
  EXPECT_LT(test::max_diff(y, x), 1e-8 * std::max(1.0, norm_max(x)) * n);
}

TEST(Gesv, OneCall) {
  const idx n = 120;
  Matrix a = random_matrix(n, n, 7);
  Matrix a_orig = a;
  Matrix x_true = random_matrix(n, 5, 8);
  Matrix b = multiply(blas::Trans::NoTrans, a, x_true);
  PivotVector ipiv;
  ASSERT_EQ(lapack::gesv(a.view(), ipiv, b.view()), 0);
  EXPECT_LT(lapack::solve_residual(
                a_orig, b, multiply(blas::Trans::NoTrans, a_orig, x_true)),
            kTol);
}

TEST(Gesv, SingularReturnsInfoAndLeavesB) {
  Matrix a = Matrix::zeros(10, 10);
  Matrix b = random_matrix(10, 1, 9);
  Matrix b0 = b;
  PivotVector ipiv;
  EXPECT_EQ(lapack::gesv(a.view(), ipiv, b.view()), 1);
  EXPECT_EQ(test::max_diff(b, b0), 0.0);
}

TEST(QrSolve, OverdeterminedRecoversExact) {
  const idx m = 300, n = 40;
  Matrix a = random_matrix(m, n, 11);
  Matrix x_true = random_matrix(n, 2, 12);
  Matrix b = Matrix::zeros(m, 2);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, x_true, 0.0,
             b.view());
  Matrix qr = a;
  std::vector<double> tau;
  lapack::geqrf(qr.view(), tau);
  lapack::qr_solve(qr, tau, b.view());
  for (idx j = 0; j < 2; ++j) {
    for (idx i = 0; i < n; ++i) {
      EXPECT_NEAR(b(i, j), x_true(i, j), 1e-9 * n);
    }
  }
}

TEST(QrSolve, MinimizesResidualOnInconsistentSystem) {
  // For an inconsistent system the LS solution satisfies A^T (A x - b) = 0.
  const idx m = 200, n = 20;
  Matrix a = random_matrix(m, n, 13);
  Matrix b = random_matrix(m, 1, 14);
  Matrix rhs = b;
  Matrix qr = a;
  std::vector<double> tau;
  lapack::geqrf(qr.view(), tau);
  lapack::qr_solve(qr, tau, rhs.view());

  Matrix x(n, 1);
  copy_into(rhs.view().rows_range(0, n), x.view());
  // r = A x - b; check ||A^T r|| small.
  Matrix r = b;
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, x, -1.0,
             r.view());
  Matrix atr(n, 1);
  blas::gemm(blas::Trans::Trans, blas::Trans::NoTrans, 1.0, a, r, 0.0,
             atr.view());
  EXPECT_LT(norm_max(atr.view()),
            1e-10 * norm_fro(a) * norm_fro(r.view()) + 1e-10);
}

TEST(CaluGesv, SolvesWithTournamentPivoting) {
  const idx n = 150;
  Matrix a = random_matrix(n, n, 15);
  Matrix a_orig = a;
  Matrix x_true = random_matrix(n, 3, 16);
  Matrix b = multiply(blas::Trans::NoTrans, a, x_true);
  core::CaluOptions o;
  o.b = 32;
  o.tr = 4;
  o.num_threads = 2;
  ASSERT_EQ(core::calu_gesv(a.view(), b.view(), o), 0);
  EXPECT_LT(test::max_diff(b, x_true), 1e-8 * std::max(1.0, norm_max(x_true)) * n);
  (void)a_orig;
}

TEST(CaluGesv, RejectsRectangular) {
  Matrix a = random_matrix(10, 8, 17);
  Matrix b = random_matrix(10, 1, 18);
  EXPECT_THROW(core::calu_gesv(a.view(), b.view()), std::invalid_argument);
}

TEST(CaqrLeastSquares, RecoversGeneratingModel) {
  const idx m = 400, n = 30;
  Matrix a = random_matrix(m, n, 19);
  Matrix x_true = random_matrix(n, 2, 20);
  Matrix b = Matrix::zeros(m, 2);
  blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a, x_true, 0.0,
             b.view());
  core::CaqrOptions o;
  o.b = 10;
  o.tr = 4;
  o.num_threads = 2;
  core::caqr_least_squares(a.view(), b.view(), o);
  for (idx j = 0; j < 2; ++j) {
    for (idx i = 0; i < n; ++i) {
      EXPECT_NEAR(b(i, j), x_true(i, j), 1e-8 * n);
    }
  }
}

TEST(CaqrLeastSquares, RejectsWide) {
  Matrix a = random_matrix(5, 9, 21);
  Matrix b = random_matrix(5, 1, 22);
  EXPECT_THROW(core::caqr_least_squares(a.view(), b.view()),
               std::invalid_argument);
}


TEST(Refine, ImprovesIllConditionedSolve) {
  // A moderately ill-conditioned system: refinement must not make the
  // residual worse and typically improves it.
  const idx n = 100;
  Matrix a = random_matrix(n, n, 31);
  for (idx j = 0; j < n; ++j) a(j, j) *= 1e-4;  // shrink the diagonal
  Matrix x_true = random_matrix(n, 2, 32);
  Matrix b = multiply(blas::Trans::NoTrans, a, x_true);

  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(lapack::getrf(lu.view(), ipiv), 0);
  Matrix x = b;
  lapack::getrs(blas::Trans::NoTrans, lu, ipiv, x.view());

  const double before = lapack::solve_residual(a, x, b);
  const int sweeps = lapack::refine_solution(a, lu, ipiv, b, x.view(), 3);
  const double after = lapack::solve_residual(a, x, b);
  EXPECT_GE(sweeps, 0);
  EXPECT_LE(after, before * 1.5 + 1.0);
  EXPECT_LT(after, kTol);
}

TEST(Refine, NoOpOnExactSolution) {
  const idx n = 40;
  Matrix a = random_matrix(n, n, 33);
  Matrix x_true = random_matrix(n, 1, 34);
  Matrix b = multiply(blas::Trans::NoTrans, a, x_true);
  Matrix lu = a;
  PivotVector ipiv;
  ASSERT_EQ(lapack::getrf(lu.view(), ipiv), 0);
  Matrix x = b;
  lapack::getrs(blas::Trans::NoTrans, lu, ipiv, x.view());
  Matrix x_before = x;
  lapack::refine_solution(a, lu, ipiv, b, x.view(), 3);
  // Refinement from an already-good solution must stay good.
  EXPECT_LT(lapack::solve_residual(a, x, b), kTol);
  EXPECT_LT(test::max_diff(x, x_before), 1e-8 * std::max(1.0, norm_max(x)));
}

TEST(SolveResidual, ZeroForExactSolution) {
  Matrix a = Matrix::identity(5, 5);
  Matrix x = random_matrix(5, 1, 23);
  Matrix b = x;
  EXPECT_LT(lapack::solve_residual(a, x, b), 1.0);
}

}  // namespace
}  // namespace camult
