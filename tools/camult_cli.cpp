// camult — command-line driver for the library.
//
//   camult info  <A.mtx>
//   camult lu    <A.mtx|random:MxN> [options]      CALU factorization
//   camult qr    <A.mtx|random:MxN> [options]      CAQR factorization
//   camult chol  <A.mtx|random:N>   [options]      tiled Cholesky
//   camult solve <A.mtx> <b.mtx> [-o x.mtx] [options]
//
// Options: -b <block>  -t|--tr <Tr>  -p|--threads <N>  --pool
//          --tree binary|flat|hybrid  -o <out.mtx>
//          --trace-json <path>   write a chrome://tracing / Perfetto trace
// Matrices are Matrix Market files; "random:MxN" generates a seeded
// uniform matrix instead.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "core/core.hpp"
#include "lapack/lapack.hpp"
#include "matrix/io.hpp"
#include "matrix/norms.hpp"
#include "matrix/random.hpp"
#include "runtime/chrome_trace.hpp"
#include "runtime/worker_pool.hpp"
#include "tiled/tile_cholesky.hpp"

namespace {

using namespace camult;

struct Args {
  std::string command;
  std::vector<std::string> inputs;
  idx b = 100;
  idx tr = 4;
  int threads = rt::default_num_threads();
  bool use_pool = false;  ///< run on the process-wide persistent WorkerPool
  core::ReductionTree tree = core::ReductionTree::Binary;
  std::string out;
  std::string trace_json;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: camult <info|lu|qr|chol|solve> <inputs...> "
      "[-b N] [-t Tr] [-p threads] [--pool] [--tree binary|flat|hybrid]\n"
      "       [-o out.mtx] [--trace-json trace.json]\n"
      "inputs are MatrixMarket files or random:MxN\n");
  std::exit(2);
}

// Strict numeric option parsing. atoi/atoll silently turned
// "--threads garbage" into 0 (inline serial mode!) and let negative values
// surface as std::invalid_argument from deep inside TaskGraph; reject both
// here with a proper usage error instead.
long long parse_num(const char* opt, const char* s, long long min_value) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v < min_value) {
    std::fprintf(stderr, "camult: invalid value '%s' for %s (expect integer "
                 ">= %lld)\n", s, opt, min_value);
    usage();
  }
  return v;
}

Args parse(int argc, char** argv) {
  if (argc < 3) usage();
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (s == "-b") {
      a.b = parse_num("-b", next(), 1);
    } else if (s == "-t" || s == "--tr") {
      a.tr = parse_num("-t/--tr", next(), 1);
    } else if (s == "-p" || s == "--threads") {
      // 0 is legal: inline serial (record) mode.
      a.threads = static_cast<int>(parse_num("-p/--threads", next(), 0));
    } else if (s == "--pool") {
      a.use_pool = true;
    } else if (s == "-o") {
      a.out = next();
    } else if (s == "--trace-json") {
      a.trace_json = next();
    } else if (s == "--tree") {
      const std::string t = next();
      if (t == "binary") a.tree = core::ReductionTree::Binary;
      else if (t == "flat") a.tree = core::ReductionTree::Flat;
      else if (t == "hybrid") a.tree = core::ReductionTree::Hybrid;
      else usage();
    } else if (!s.empty() && s[0] == '-') {
      usage();
    } else {
      a.inputs.push_back(s);
    }
  }
  if (a.inputs.empty()) usage();
  return a;
}

Matrix load(const std::string& spec) {
  if (spec.rfind("random:", 0) == 0) {
    const std::string dims = spec.substr(7);
    const auto x = dims.find('x');
    const std::string mstr = dims.substr(0, x);
    const idx m = parse_num("random:MxN rows", mstr.c_str(), 1);
    const idx n = (x == std::string::npos)
                      ? m
                      : parse_num("random:MxN cols", dims.c_str() + x + 1, 1);
    std::printf("generating random %lld x %lld matrix (seed 1)\n",
                static_cast<long long>(m), static_cast<long long>(n));
    return random_matrix(m, n, 1);
  }
  return read_matrix_market_file(spec);
}

double now_run(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// Shared observability tail for lu/qr/chol: scheduler counter summary on
// stdout, plus the chrome://tracing JSON when --trace-json was given.
void report_run(const Args& args, const std::vector<rt::TaskRecord>& trace,
                const std::vector<rt::TaskGraph::Edge>& edges,
                const rt::SchedulerStats& sched) {
  const rt::WorkerStats tot = sched.totals();
  if (tot.tasks_executed > 0) {
    std::printf(
        "scheduler: %lld tasks, %lld steals (%lld failed), %lld wakeups\n",
        static_cast<long long>(tot.tasks_executed),
        static_cast<long long>(tot.steals),
        static_cast<long long>(tot.steal_fails),
        static_cast<long long>(tot.wakeups_sent));
  }
  if (!args.trace_json.empty()) {
    rt::write_chrome_trace_file(args.trace_json, trace, edges);
    std::printf("wrote chrome trace to %s (open in ui.perfetto.dev)\n",
                args.trace_json.c_str());
  }
}

// Health diagnostic shared by lu/qr: growth on stdout, interventions on
// stderr. Returns whether the run was degraded, which drives a nonzero
// exit code — scripts must not mistake an Inf-laden or GEPP-salvaged
// factorization for a clean one.
bool report_health(const core::HealthReport& h) {
  std::printf("health: max panel growth = %.3g\n", h.max_growth);
  if (h.nan_detected) {
    std::fprintf(stderr,
                 "health: non-finite entries detected before factoring\n");
  }
  if (h.fallback_panels > 0) {
    std::string list;
    for (idx k : h.fallback_list) {
      if (!list.empty()) list += ", ";
      list += std::to_string(static_cast<long long>(k));
    }
    std::fprintf(stderr,
                 "health: %lld panel(s) fell back to full-panel GEPP [%s]\n",
                 static_cast<long long>(h.fallback_panels), list.c_str());
  }
  return h.degraded();
}

int cmd_info(const Args& args) {
  Matrix a = load(args.inputs[0]);
  std::printf("%lld x %lld\n", static_cast<long long>(a.rows()),
              static_cast<long long>(a.cols()));
  std::printf("||A||_1 = %.6g, ||A||_inf = %.6g, ||A||_F = %.6g\n",
              norm_one(a), norm_inf(a), norm_fro(a));
  if (a.rows() == a.cols()) {
    Matrix lu = a;
    PivotVector ipiv;
    if (lapack::getrf(lu.view(), ipiv) == 0) {
      std::printf("kappa_1 (estimated) = %.3g\n",
                  lapack::gecon(lu, ipiv, norm_one(a)));
    } else {
      std::printf("matrix is singular\n");
    }
  }
  return 0;
}

int cmd_lu(const Args& args) {
  Matrix a = load(args.inputs[0]);
  Matrix lu = a;
  core::CaluOptions o;
  o.b = args.b;
  o.tr = args.tr;
  o.tree = args.tree;
  o.num_threads = args.threads;
  // Per-task trace retention is opt-in: only pay the O(tasks) record
  // buffer when the user asked for the chrome trace.
  o.record_trace = !args.trace_json.empty();
  if (args.use_pool) o.pool = &rt::WorkerPool::process_default();
  core::CaluResult res;
  const double secs = now_run([&] { res = core::calu_factor(lu.view(), o); });
  std::printf("CALU: %lld tasks, %.3f s, info=%lld\n",
              static_cast<long long>(res.sched.totals().tasks_executed),
              secs, static_cast<long long>(res.info));
  report_run(args, res.trace, res.edges, res.sched);
  const bool degraded = report_health(res.health);
  if (res.info == 0) {
    std::printf("scaled residual ||PA-LU|| = %.2f, growth = %.3g\n",
                lapack::lu_residual(a, lu, res.ipiv),
                lapack::pivot_growth(a, lu));
  } else {
    std::fprintf(stderr, "lu: zero pivot at column %lld\n",
                 static_cast<long long>(res.info));
  }
  if (!args.out.empty()) {
    write_matrix_market_file(args.out, lu);
    std::printf("wrote packed LU factors to %s\n", args.out.c_str());
  }
  return res.info == 0 && !degraded ? 0 : 1;
}

int cmd_qr(const Args& args) {
  Matrix a = load(args.inputs[0]);
  Matrix qr = a;
  core::CaqrOptions o;
  o.b = args.b;
  o.tr = args.tr;
  o.tree = args.tree;
  o.num_threads = args.threads;
  o.record_trace = !args.trace_json.empty();
  if (args.use_pool) o.pool = &rt::WorkerPool::process_default();
  core::CaqrResult res;
  const double secs = now_run([&] { res = core::caqr_factor(qr.view(), o); });
  std::printf("CAQR: %lld tasks, %.3f s\n",
              static_cast<long long>(res.sched.totals().tasks_executed),
              secs);
  report_run(args, res.trace, res.edges, res.sched);
  const bool degraded = report_health(res.health);
  std::printf("scaled residual ||A-QR|| = %.2f\n",
              core::caqr_residual(a, qr, res));
  if (!args.out.empty()) {
    write_matrix_market_file(args.out, core::caqr_extract_r(qr, res));
    std::printf("wrote R factor to %s\n", args.out.c_str());
  }
  return degraded ? 1 : 0;
}

int cmd_chol(const Args& args) {
  Matrix a = [&] {
    if (args.inputs[0].rfind("random:", 0) == 0) {
      // SPD: B B^T + n I.
      Matrix b = load(args.inputs[0]);
      if (b.rows() != b.cols()) usage();
      Matrix spd = Matrix::identity(b.rows(), b.rows());
      for (idx i = 0; i < b.rows(); ++i) {
        spd(i, i) = static_cast<double>(b.rows());
      }
      blas::gemm(blas::Trans::NoTrans, blas::Trans::Trans, 1.0, b, b, 1.0,
                 spd.view());
      return spd;
    }
    return load(args.inputs[0]);
  }();
  Matrix chol = a;
  tiled::TileCholeskyOptions o;
  o.b = args.b;
  o.num_threads = args.threads;
  o.record_trace = !args.trace_json.empty();
  tiled::TileCholeskyResult res;
  const double secs =
      now_run([&] { res = tiled::tile_cholesky_factor(chol.view(), o); });
  std::printf("tiled Cholesky: %lld tasks, %.3f s, info=%lld\n",
              static_cast<long long>(res.sched.totals().tasks_executed),
              secs, static_cast<long long>(res.info));
  report_run(args, res.trace, res.edges, res.sched);
  if (res.info == 0) {
    std::printf("scaled residual ||A-LL^T|| = %.2f\n",
                lapack::cholesky_residual(a, chol));
  }
  return res.info == 0 ? 0 : 1;
}

int cmd_solve(const Args& args) {
  if (args.inputs.size() < 2) usage();
  Matrix a = load(args.inputs[0]);
  Matrix b = load(args.inputs[1]);
  if (a.rows() != a.cols() || b.rows() != a.rows()) {
    std::fprintf(stderr, "solve: need square A and conforming b\n");
    return 1;
  }
  Matrix a_orig = a;
  Matrix x = b;
  core::CaluOptions o;
  o.b = args.b;
  o.tr = args.tr;
  o.tree = args.tree;
  o.num_threads = args.threads;
  o.record_trace = false;  // solve reports no trace; don't retain one
  if (args.use_pool) o.pool = &rt::WorkerPool::process_default();
  idx info = 0;
  const double secs =
      now_run([&] { info = core::calu_gesv(a.view(), x.view(), o); });
  if (info != 0) {
    std::fprintf(stderr, "solve: matrix singular at column %lld\n",
                 static_cast<long long>(info));
    return 1;
  }
  std::printf("solved in %.3f s, backward error %.2f (scaled)\n", secs,
              lapack::solve_residual(a_orig, x, b));
  if (!args.out.empty()) {
    write_matrix_market_file(args.out, x);
    std::printf("wrote solution to %s\n", args.out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "info") return cmd_info(args);
    if (args.command == "lu") return cmd_lu(args);
    if (args.command == "qr") return cmd_qr(args);
    if (args.command == "chol") return cmd_chol(args);
    if (args.command == "solve") return cmd_solve(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
}
