#!/usr/bin/env sh
# Build the runtime tests under ThreadSanitizer and run the scheduler's
# concurrency surface: test_runtime (API + wakeup paths),
# test_scheduler_stress (randomized DAGs, submission racing execution,
# both policies, 1-8 threads), test_observability (the per-worker
# counter instrumentation: single-writer slots racing the stats() reader,
# steal accounting under contention), test_pack_concurrency (one shared
# PackedPanel consumed read-only by many S tasks while other workers pack
# the next panel — the only happens-before is the scheduler's dep edge),
# test_worker_pool (persistent workers rotating between concurrently
# attached DAGs: the attach/detach, park/wake and control-epoch
# handshakes), test_blas_pack (including the dead-thread_local slab
# pool regression, which under ASAN is a heap use-after-free if pool()
# ever hands back the destroyed pool), test_fault_inject (the
# failure-aware surface: seeded fault injection — throws, delays and
# cancel-oblivious hangs — into hundreds of CALU/CAQR runs, cancellation,
# the fast-abort drain accounting, and the 200-seed service fault storm
# with retry + stall watchdog + breakers armed — exactly the error paths
# production never exercises until it hurts),
# test_svc (the multi-tenant job service: dispatcher threads racing
# submit/shed/cancel/shutdown over one shared pool, the watchdog firing
# deadlines AND stall-cancels against running jobs while its seqlock
# heartbeat reads race the workers' writes, retry re-enqueues racing
# shutdown, breaker state shared across submitters) and
# test_window (sliding-window DAG
# submission: the submission thread recycling task-store slabs and
# harvesting trace records of retired iterations while workers are
# still completing newer ones). Any reported race fails the run.
#
# Usage: tools/run_tsan.sh [build-dir]        (default: build-tsan)
# Other sanitizers via: SAN=address tools/run_tsan.sh
#                       SAN=undefined tools/run_tsan.sh
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
san=${SAN:-thread}
build_dir=${1:-"$repo_root/build-$san"}

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCAMULT_SANITIZE="$san" \
  -DCAMULT_NATIVE_ARCH=OFF \
  -DCAMULT_BUILD_BENCH=OFF \
  -DCAMULT_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" -j --target test_runtime test_scheduler_stress \
  test_observability test_pack_concurrency test_worker_pool test_blas_pack \
  test_fault_inject test_svc test_window

case "$san" in
  thread)
    export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}"
    ;;
  address)
    export ASAN_OPTIONS="detect_leaks=1${ASAN_OPTIONS:+ $ASAN_OPTIONS}"
    ;;
  undefined)
    export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1${UBSAN_OPTIONS:+ $UBSAN_OPTIONS}"
    ;;
esac

"$build_dir/tests/test_runtime"
"$build_dir/tests/test_scheduler_stress"
"$build_dir/tests/test_observability"
"$build_dir/tests/test_pack_concurrency"
"$build_dir/tests/test_worker_pool"
"$build_dir/tests/test_blas_pack"
"$build_dir/tests/test_fault_inject"
"$build_dir/tests/test_svc"
"$build_dir/tests/test_window"
echo "[$san sanitizer] all scheduler tests passed"
