# Bench smoke: run one LU figure bench, one QR figure bench, the trace
# bench and the gemm_kernel microbench at tiny sizes, then validate every
# emitted JSON artifact with check_bench_json. Driven by the
# bench_json_smoke ctest registered in tools/CMakeLists.txt; expects
# FIG5_BIN, FIG8_BIN, FIG34_BIN, GEMMK_BIN, CLI_BIN, CHECKER_BIN and
# OUT_DIR on the command line (-D...).
foreach(var FIG5_BIN FIG8_BIN FIG34_BIN GEMMK_BIN REPCALL_BIN CLI_BIN
            CHECKER_BIN OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")
set(ENV{CAMULT_BENCH_JSON} "${OUT_DIR}")
set(ENV{CAMULT_BENCH_CSV} "${OUT_DIR}")
# Tiny problem so the smoke stays in seconds; the schema does not depend on
# the problem size.
set(ENV{CAMULT_BENCH_M} 2000)
set(ENV{CAMULT_BENCH_N} 200)
set(ENV{CAMULT_BENCH_NS} 100)

function(smoke_run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rv OUTPUT_QUIET)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench_smoke: '${ARGV}' failed with status ${rv}")
  endif()
endfunction()

smoke_run("${FIG5_BIN}")
smoke_run("${FIG8_BIN}")
smoke_run("${FIG34_BIN}")

# gemm_kernel at one rep / minimal segments: the smoke validates the report
# schema, not the speedup.
set(ENV{CAMULT_BENCH_GEMM_SEGS} 8)
set(ENV{CAMULT_BENCH_GEMM_REPS} 1)
smoke_run("${GEMMK_BIN}")

# repeated_calls at a handful of reps: validates the persistent-pool report
# schema (and exercises attach/detach + the batch driver end to end).
set(ENV{CAMULT_BENCH_REPS} 6)
set(ENV{CAMULT_BENCH_BATCH} 3)
smoke_run("${REPCALL_BIN}")

smoke_run("${CHECKER_BIN}"
  "${OUT_DIR}/BENCH_fig5.json"
  "${OUT_DIR}/BENCH_fig8.json"
  "${OUT_DIR}/BENCH_fig3_4_trace.json"
  "${OUT_DIR}/BENCH_gemm_kernel.json"
  "${OUT_DIR}/BENCH_repeated_calls.json")
smoke_run("${CHECKER_BIN}" --chrome
  "${OUT_DIR}/fig3_4_tr1.trace.json"
  "${OUT_DIR}/fig3_4_tr8.trace.json")

# CLI end-to-end: a real 2-thread run must produce a valid chrome trace.
smoke_run("${CLI_BIN}" lu random:600x300 -b 100 -t 2 -p 2
  --trace-json "${OUT_DIR}/cli_trace.json")
smoke_run("${CHECKER_BIN}" --chrome "${OUT_DIR}/cli_trace.json")

# --pool runs on the process-wide persistent WorkerPool; and the strict
# option parser must reject non-numeric / negative values with a usage
# error instead of silently factoring with atoi's 0.
smoke_run("${CLI_BIN}" lu random:300 -b 64 -t 2 -p 2 --pool)
foreach(bad "-p nonsense" "-p -3" "-b 0" "-t 12x")
  separate_arguments(bad_args UNIX_COMMAND "${bad}")
  execute_process(COMMAND "${CLI_BIN}" lu random:100 ${bad_args}
    RESULT_VARIABLE rv OUTPUT_QUIET ERROR_QUIET)
  if(rv EQUAL 0)
    message(FATAL_ERROR "bench_smoke: CLI accepted invalid option '${bad}'")
  endif()
endforeach()

message(STATUS "bench smoke OK: artifacts in ${OUT_DIR}")
