// autotune — sweep GEMM cache blocking (MC/KC/NC) per supported kernel and
// shape class, and cache the winners in the tuning file active_blocking()
// consults (see src/blas/tuning.hpp for the format and path resolution).
//
//   autotune [--out <path>] [--reps N] [--quick] [--dry-run]
//
// For every kernel this host can execute (cpuid, via the kernel registry)
// and every shape class, a representative problem is timed under each
// candidate blocking pinned with set_blocking_override(). Winners are
// written last, so a re-tune appended to an existing file dominates via the
// table's last-wins lookup. Entries for other machines (different arch-id)
// already in the file are preserved.
//
// The tuning file is advice, not configuration: a bad sweep can cost speed
// but can never change numerical results, and the loader rejects anything
// malformed wholesale (falling back to built-in defaults).
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "matrix/random.hpp"

namespace {

using namespace camult;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ShapeCase {
  const char* shape;  ///< shape_class() name this problem falls in
  idx m, n, k;
};

// One representative problem per shape class. Sizes are chosen so the
// problem exceeds the small-gemm cutoff and actually exercises the blocked
// path, while staying quick enough to sweep on one core.
const ShapeCase kShapes[] = {
    {"tiny", 64, 64, 64},
    {"panel", 1536, 384, 48},
    {"tall", 2048, 256, 256},
    {"square", 768, 768, 768},
};

// Candidate grids. MC is rounded to the kernel's MR multiple, NC to NR.
const idx kMcCandidates[] = {96, 192, 384};
const idx kKcCandidates[] = {128, 256, 384};
const idx kNcCandidates[] = {384, 768, 1536};

idx round_up(idx v, idx step) { return ((v + step - 1) / step) * step; }

// Strict --reps parse: the whole token must be a decimal integer >= 1.
// atoi silently mapped "abc" to 0 (then max'd to 1) and "3x" to 3, so a
// typo'd invocation tuned with the wrong repetition count instead of
// failing loudly.
bool parse_reps(const char* s, int* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v < 1 || v > 1000000) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

double time_gemm(const Matrix& a, const Matrix& b, Matrix& c,
                 const Matrix& c0, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    copy_into(c0.view(), c.view());
    const double t0 = now_s();
    blas::gemm(blas::Trans::NoTrans, blas::Trans::NoTrans, 1.0, a.view(),
               b.view(), 1.0, c.view());
    best = std::min(best, now_s() - t0);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace camult;

  std::string out_path;
  int reps = 3;
  bool quick = false;
  bool dry_run = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      if (!parse_reps(argv[++i], &reps)) {
        std::fprintf(stderr, "autotune: invalid --reps '%s' (want integer"
                     " >= 1)\n", argv[i]);
        return 2;
      }
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else {
      std::fprintf(stderr,
                   "usage: autotune [--out <path>] [--reps N] [--quick] "
                   "[--dry-run]\n");
      return 2;
    }
  }
  if (out_path.empty()) out_path = blas::tuning_file_path();
  if (out_path.empty() && !dry_run) {
    std::fprintf(stderr,
                 "autotune: no output path (set CAMULT_TUNE_FILE or HOME, "
                 "or pass --out)\n");
    return 2;
  }

  const std::string arch(blas::arch_id());
  std::printf("autotune: arch %s, %d rep%s per candidate%s\n", arch.c_str(),
              reps, reps == 1 ? "" : "s", quick ? " (quick grid)" : "");

  // Keep other machines' entries; drop this arch's (they are re-derived).
  std::vector<blas::TuningEntry> keep;
  const blas::TuningTable prior = blas::load_tuning_file(out_path);
  for (const blas::TuningEntry& e : prior.entries) {
    if (e.arch != arch) keep.push_back(e);
  }
  if (!prior.error.empty()) {
    std::fprintf(stderr, "autotune: ignoring existing file: %s\n",
                 prior.error.c_str());
  }

  std::vector<blas::TuningEntry> winners;
  for (const blas::KernelInfo& ki : blas::kernel_registry()) {
    if (!ki.supported) continue;
    if (!blas::set_active_kernel(ki.name)) continue;
    const idx mr = ki.blocking.mr;
    const idx nr = ki.blocking.nr;

    for (const ShapeCase& sc : kShapes) {
      const Matrix a = random_matrix(sc.m, sc.k, 11);
      const Matrix b = random_matrix(sc.k, sc.n, 13);
      const Matrix c0 = random_matrix(sc.m, sc.n, 17);
      Matrix c(sc.m, sc.n);

      blas::GemmBlocking best_blk = ki.blocking;
      double best_s = 1e300;
      for (idx mc : kMcCandidates) {
        for (idx kc : kKcCandidates) {
          for (idx nc : kNcCandidates) {
            if (quick && (kc != 256 && nc != 768)) continue;
            blas::GemmBlocking blk{round_up(mc, mr), kc, round_up(nc, nr),
                                   mr, nr};
            if (!blas::set_blocking_override(blk)) continue;
            const double s = time_gemm(a, b, c, c0, reps);
            if (s < best_s) {
              best_s = s;
              best_blk = blk;
            }
          }
        }
      }
      blas::clear_blocking_override();

      const double gflops = 2.0 * static_cast<double>(sc.m) *
                            static_cast<double>(sc.n) *
                            static_cast<double>(sc.k) / best_s * 1e-9;
      std::printf("  %-7s %-6s mc=%-4lld kc=%-4lld nc=%-5lld  %7.2f GF/s\n",
                  ki.name, sc.shape, static_cast<long long>(best_blk.mc),
                  static_cast<long long>(best_blk.kc),
                  static_cast<long long>(best_blk.nc), gflops);
      winners.push_back({arch, ki.name, sc.shape, best_blk.mc, best_blk.kc,
                         best_blk.nc});
    }
  }
  blas::set_active_kernel("");  // restore cpuid dispatch

  if (dry_run) {
    std::printf("autotune: dry run, not writing\n");
    return 0;
  }
  std::vector<blas::TuningEntry> all = keep;
  all.insert(all.end(), winners.begin(), winners.end());
  if (!blas::save_tuning_file(out_path, all)) {
    std::fprintf(stderr, "autotune: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("autotune: wrote %zu entr%s to %s\n", all.size(),
              all.size() == 1 ? "y" : "ies", out_path.c_str());

  // Round-trip through the hardened loader so a bug here surfaces now, not
  // silently at the next process start.
  const blas::TuningTable check = blas::load_tuning_file(out_path);
  if (!check.loaded) {
    std::fprintf(stderr, "autotune: wrote a file the loader rejects: %s\n",
                 check.error.c_str());
    return 1;
  }
  return 0;
}
