// check_bench_json — schema validator for the machine-readable artifacts
// this repo emits:
//
//   check_bench_json BENCH_foo.json ...          bench reports
//   check_bench_json --chrome trace.json ...     chrome://tracing JSON
//
// A bench report (written by src/bench_support/json_report.*) must be an
// object {bench, mode, cores, env{git, compiler, flags}, rows[...]} with
// every row an object whose numeric/text fields have the right JSON types.
// A chrome trace must be an array of event objects each carrying a one-char
// "ph" phase plus the fields Perfetto requires for that phase.
//
// Exits 0 when every file validates, 1 with one message per problem
// otherwise. Used by the ctest bench smoke target (see tools/CMakeLists.txt).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/json.hpp"

namespace {

using camult::bench::JsonValue;

int g_errors = 0;

/// --max-field NAME=VALUE assertions: every report checked must carry at
/// least one row with a numeric NAME, and no row's NAME may exceed VALUE.
/// This is how the CI `window` tier pins peak task-store bytes: a windowed
/// fig6 run whose task store grew past the budget fails the check instead
/// of silently regressing to O(total-DAG) memory.
struct MaxField {
  std::string key;
  double limit = 0.0;
};
std::vector<MaxField> g_max_fields;

void fail(const std::string& file, const std::string& msg) {
  std::fprintf(stderr, "%s: %s\n", file.c_str(), msg.c_str());
  ++g_errors;
}

const JsonValue* need(const std::string& file, const JsonValue& obj,
                      const char* key, JsonValue::Type type,
                      const char* type_name) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    fail(file, std::string("missing key \"") + key + "\"");
    return nullptr;
  }
  if (v->type != type) {
    fail(file, std::string("key \"") + key + "\" is not " + type_name);
    return nullptr;
  }
  return v;
}

bool parse_file(const std::string& path, JsonValue& out) {
  std::ifstream in(path);
  if (!in) {
    fail(path, "cannot open");
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    out = JsonValue::parse(buf.str());
  } catch (const std::exception& e) {
    fail(path, std::string("invalid JSON: ") + e.what());
    return false;
  }
  return true;
}

// --- bench report schema ---------------------------------------------------

void check_row(const std::string& file, const JsonValue& row,
               std::size_t index) {
  const std::string where = "rows[" + std::to_string(index) + "]";
  if (!row.is_object()) {
    fail(file, where + " is not an object");
    return;
  }
  if (row.object.empty()) fail(file, where + " is empty");
  // Typed spot-checks: numeric fields must be JSON numbers, text fields
  // JSON strings. Absent keys are fine (not every bench reports them all).
  static const char* kNumeric[] = {"m",       "n",     "b",
                                   "tr",      "cores", "seconds",
                                   "gflops",  "tasks", "edges",
                                   "steals",  "idle_fraction",
                                   "critical_path_s", "total_work_s",
                                   "health_max_growth", "fallback_panels",
                                   "flops_per_byte",
                                   "mc", "kc", "nc", "mr", "nr",
                                   // service_load rows (svc job service)
                                   "jobs", "completed", "shed", "rejected",
                                   "p50_ms", "p99_ms", "jobs_per_sec",
                                   // service_resilience rows (self-healing)
                                   "failed", "availability", "unavailability",
                                   "attempts", "retries", "stalls_detected",
                                   "breaker_opens", "goodput_jobs_per_sec",
                                   "p99_inflation",
                                   // sliding-window submission telemetry
                                   "window", "peak_task_store_bytes",
                                   "task_blocks_allocated",
                                   "task_blocks_recycled",
                                   "trace_records_harvested"};
  for (const char* key : kNumeric) {
    if (const JsonValue* v = row.find(key); v != nullptr && !v->is_number()) {
      fail(file, where + "." + key + " is not a number");
    }
  }
  static const char* kText[] = {"competitor", "kernel", "arch", "phase",
                                "qos", "tenant"};
  for (const char* key : kText) {
    if (const JsonValue* v = row.find(key); v != nullptr && !v->is_string()) {
      fail(file, where + "." + key + " is not a string");
    }
  }
  if (const JsonValue* v = row.find("nan_detected");
      v != nullptr && !v->is_bool()) {
    fail(file, where + ".nan_detected is not a boolean");
  }
}

void check_report(const std::string& file) {
  JsonValue root;
  if (!parse_file(file, root)) return;
  if (!root.is_object()) {
    fail(file, "report root is not an object");
    return;
  }
  need(file, root, "bench", JsonValue::Type::String, "a string");
  if (const JsonValue* mode =
          need(file, root, "mode", JsonValue::Type::String, "a string");
      mode != nullptr && mode->string != "sim" && mode->string != "real") {
    fail(file, "mode must be \"sim\" or \"real\", got \"" + mode->string +
                   "\"");
  }
  need(file, root, "cores", JsonValue::Type::Number, "a number");
  if (const JsonValue* env =
          need(file, root, "env", JsonValue::Type::Object, "an object");
      env != nullptr) {
    need(file, *env, "git", JsonValue::Type::String, "a string");
    need(file, *env, "compiler", JsonValue::Type::String, "a string");
    need(file, *env, "flags", JsonValue::Type::String, "a string");
  }
  if (const JsonValue* rows =
          need(file, root, "rows", JsonValue::Type::Array, "an array");
      rows != nullptr) {
    if (rows->array.empty()) fail(file, "rows is empty");
    for (std::size_t i = 0; i < rows->array.size(); ++i) {
      check_row(file, rows->array[i], i);
    }
    for (const MaxField& mf : g_max_fields) {
      std::size_t carrying = 0;
      for (std::size_t i = 0; i < rows->array.size(); ++i) {
        const JsonValue& row = rows->array[i];
        if (!row.is_object()) continue;
        const JsonValue* v = row.find(mf.key);
        if (v == nullptr || !v->is_number()) continue;
        ++carrying;
        if (v->number > mf.limit) {
          fail(file, "rows[" + std::to_string(i) + "]." + mf.key + " = " +
                         std::to_string(v->number) + " exceeds --max-field " +
                         "limit " + std::to_string(mf.limit));
        }
      }
      if (carrying == 0) {
        fail(file, "no row carries numeric \"" + mf.key +
                       "\" (--max-field has nothing to assert on)");
      }
    }
  }
}

// --- chrome trace schema ---------------------------------------------------

void check_chrome_event(const std::string& file, const JsonValue& ev,
                        std::size_t index) {
  const std::string where = "events[" + std::to_string(index) + "]";
  if (!ev.is_object()) {
    fail(file, where + " is not an object");
    return;
  }
  const JsonValue* ph = ev.find("ph");
  if (ph == nullptr || !ph->is_string() || ph->string.size() != 1) {
    fail(file, where + ".ph missing or not a one-char string");
    return;
  }
  const char phase = ph->string[0];
  if (phase != 'M' && phase != 'X' && phase != 's' && phase != 'f' &&
      phase != 'C') {
    fail(file, where + ".ph unexpected phase '" + ph->string + "'");
    return;
  }
  auto need_num = [&](const char* key) {
    if (const JsonValue* v = ev.find(key); v == nullptr || !v->is_number()) {
      fail(file, where + "." + key + " missing or not a number");
    }
  };
  auto need_str = [&](const char* key) {
    if (const JsonValue* v = ev.find(key); v == nullptr || !v->is_string()) {
      fail(file, where + "." + key + " missing or not a string");
    }
  };
  need_num("pid");
  need_str("name");
  if (phase != 'M') need_num("ts");
  // Counter events are process-scoped: no tid required.
  if (phase == 'X' || phase == 's' || phase == 'f') need_num("tid");
  if (phase == 'X') need_num("dur");
  if (phase == 's' || phase == 'f') need_num("id");
  if (phase == 'C') {
    if (const JsonValue* a = ev.find("args"); a == nullptr || !a->is_object()) {
      fail(file, where + ".args missing or not an object (counter event)");
    }
  }
}

void check_chrome(const std::string& file) {
  JsonValue root;
  if (!parse_file(file, root)) return;
  if (!root.is_array()) {
    fail(file, "chrome trace root is not an array");
    return;
  }
  if (root.array.empty()) fail(file, "chrome trace has no events");
  bool has_duration = false;
  for (std::size_t i = 0; i < root.array.size(); ++i) {
    check_chrome_event(file, root.array[i], i);
    if (root.array[i].is_object()) {
      if (const JsonValue* ph = root.array[i].find("ph");
          ph != nullptr && ph->is_string() && ph->string == "X") {
        has_duration = true;
      }
    }
  }
  if (!has_duration) fail(file, "chrome trace has no duration (X) events");
}

}  // namespace

int main(int argc, char** argv) {
  bool chrome = false;
  std::vector<std::string> files;
  const char* usage_msg =
      "usage: check_bench_json [--chrome|--report] "
      "[--max-field NAME=VALUE]... file...\n";
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s == "--chrome") {
      chrome = true;
    } else if (s == "--report") {
      chrome = false;
    } else if (s == "--max-field") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s", usage_msg);
        return 2;
      }
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      char* end = nullptr;
      const double limit =
          eq == std::string::npos ? 0.0
                                  : std::strtod(spec.c_str() + eq + 1, &end);
      if (eq == std::string::npos || eq == 0 || end == nullptr ||
          *end != '\0' || end == spec.c_str() + eq + 1) {
        std::fprintf(stderr,
                     "check_bench_json: bad --max-field spec '%s' "
                     "(want NAME=VALUE)\n",
                     spec.c_str());
        return 2;
      }
      g_max_fields.push_back({spec.substr(0, eq), limit});
    } else if (!s.empty() && s[0] == '-') {
      std::fprintf(stderr, "%s", usage_msg);
      return 2;
    } else {
      files.push_back(s);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "%s", usage_msg);
    return 2;
  }
  if (!g_max_fields.empty() && chrome) {
    std::fprintf(stderr,
                 "check_bench_json: --max-field applies to --report files\n");
    return 2;
  }
  for (const std::string& f : files) {
    chrome ? check_chrome(f) : check_report(f);
  }
  if (g_errors == 0) {
    std::printf("%zu file%s OK\n", files.size(),
                files.size() == 1 ? "" : "s");
    return 0;
  }
  std::fprintf(stderr, "%d problem%s found\n", g_errors,
               g_errors == 1 ? "" : "s");
  return 1;
}
