#!/usr/bin/env sh
# run_checks.sh — the full check ladder, one command. Tiers, in order:
#
#   build   configure + compile the default (Release) tree
#   test    the complete ctest suite (unit + integration + bench smoke;
#           the bench smoke validates BENCH_*.json, including the
#           gemm_kernel report, with tools/check_bench_json)
#   fault   the failure-injection slice alone (ctest -L fault): seeded
#           task faults, cancellation, and fast-abort drain accounting —
#           a quick re-run target when touching the error paths
#   tsan    the ThreadSanitizer concurrency suite (tools/run_tsan.sh):
#           scheduler stress, fault injection + the shared-PackedPanel
#           pipeline
#   svc     the factorization job-service slice: ctest -L svc plus a
#           short bench/service_load run whose BENCH_service_load.json
#           must pass tools/check_bench_json
#   bench   run bench/gemm_kernel at full size and schema-check its
#           BENCH_gemm_kernel.json artifact
#
# Usage: tools/run_checks.sh [tier...]      (default: all tiers, in order)
#   e.g. tools/run_checks.sh build test     # skip the sanitizer + bench
# Environment: BUILD_DIR (default build-checks), JOBS (default nproc).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${BUILD_DIR:-"$repo_root/build-checks"}
jobs=${JOBS:-$(nproc 2>/dev/null || echo 4)}
tiers=${*:-"build test fault svc tsan bench"}

say() { printf '\n== run_checks: %s ==\n' "$*"; }

for tier in $tiers; do
  case "$tier" in
    build)
      say "configure + build ($build_dir)"
      cmake -B "$build_dir" -S "$repo_root"
      cmake --build "$build_dir" -j "$jobs"
      ;;
    test)
      say "ctest suite"
      ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
      ;;
    fault)
      say "fault-injection slice (ctest -L fault)"
      ctest --test-dir "$build_dir" --output-on-failure -L fault
      ;;
    tsan)
      say "ThreadSanitizer suite"
      "$repo_root/tools/run_tsan.sh"
      ;;
    svc)
      say "job-service slice (ctest -L svc + service_load smoke)"
      ctest --test-dir "$build_dir" --output-on-failure -L svc
      out_dir="$build_dir/checks_svc"
      rm -rf "$out_dir"
      mkdir -p "$out_dir"
      CAMULT_BENCH_JSON="$out_dir" CAMULT_BENCH_SVC_JOBS=24 \
        CAMULT_BENCH_SVC_QUEUE=8 CAMULT_BENCH_SEED=7 \
        "$build_dir/bench/service_load"
      "$build_dir/tools/check_bench_json" "$out_dir/BENCH_service_load.json"
      ;;
    bench)
      say "gemm_kernel bench + JSON schema check"
      out_dir="$build_dir/checks_bench"
      rm -rf "$out_dir"
      mkdir -p "$out_dir"
      CAMULT_BENCH_JSON="$out_dir" "$build_dir/bench/gemm_kernel"
      "$build_dir/tools/check_bench_json" "$out_dir/BENCH_gemm_kernel.json"
      ;;
    *)
      echo "run_checks.sh: unknown tier '$tier'" >&2
      exit 2
      ;;
  esac
done

say "all requested tiers passed ($tiers)"
