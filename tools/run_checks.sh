#!/usr/bin/env sh
# run_checks.sh — the full check ladder, one command. Tiers, in order:
#
#   build   configure + compile the default (Release) tree
#   test    the complete ctest suite (unit + integration + bench smoke;
#           the bench smoke validates BENCH_*.json, including the
#           gemm_kernel report, with tools/check_bench_json)
#   fault   the failure-injection slice alone (ctest -L fault): seeded
#           task faults, cancellation, and fast-abort drain accounting —
#           a quick re-run target when touching the error paths
#   tsan    the ThreadSanitizer concurrency suite (tools/run_tsan.sh):
#           scheduler stress, fault injection + the shared-PackedPanel
#           pipeline
#   svc     the factorization job-service slice: ctest -L svc plus a
#           short bench/service_load run whose BENCH_service_load.json
#           must pass tools/check_bench_json
#   resilience  self-healing smoke: a short bench/service_resilience fault
#           storm (noisy tenant at ~5% injected throw/hang) whose
#           BENCH_service_resilience.json must schema-check AND keep the
#           healthy tenant's unavailability <= 0.01 (availability >= 99%)
#           via check_bench_json --max-field
#   bench   run bench/gemm_kernel at full size and schema-check its
#           BENCH_gemm_kernel.json artifact
#   window  sliding-window DAG submission smoke: a short real-mode windowed
#           fig6 run at reduced m with a small panel width (many panel
#           iterations), then assert via check_bench_json --max-field that
#           the peak task store stayed O(window) — the same run with full
#           DAG submission allocates 3-5 slabs and fails the bound
#
# Usage: tools/run_checks.sh [tier...]      (default: all tiers, in order)
#   e.g. tools/run_checks.sh build test     # skip the sanitizer + bench
# Environment: BUILD_DIR (default build-checks), JOBS (default nproc).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${BUILD_DIR:-"$repo_root/build-checks"}
jobs=${JOBS:-$(nproc 2>/dev/null || echo 4)}
tiers=${*:-"build test fault svc resilience tsan bench window"}

say() { printf '\n== run_checks: %s ==\n' "$*"; }

for tier in $tiers; do
  case "$tier" in
    build)
      say "configure + build ($build_dir)"
      cmake -B "$build_dir" -S "$repo_root"
      cmake --build "$build_dir" -j "$jobs"
      ;;
    test)
      say "ctest suite"
      ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
      ;;
    fault)
      say "fault-injection slice (ctest -L fault)"
      ctest --test-dir "$build_dir" --output-on-failure -L fault
      ;;
    tsan)
      say "ThreadSanitizer suite"
      "$repo_root/tools/run_tsan.sh"
      ;;
    svc)
      say "job-service slice (ctest -L svc + service_load smoke)"
      ctest --test-dir "$build_dir" --output-on-failure -L svc
      out_dir="$build_dir/checks_svc"
      rm -rf "$out_dir"
      mkdir -p "$out_dir"
      CAMULT_BENCH_JSON="$out_dir" CAMULT_BENCH_SVC_JOBS=24 \
        CAMULT_BENCH_SVC_QUEUE=8 CAMULT_BENCH_SEED=7 \
        "$build_dir/bench/service_load"
      "$build_dir/tools/check_bench_json" "$out_dir/BENCH_service_load.json"
      ;;
    resilience)
      say "self-healing smoke (service_resilience storm + availability gate)"
      out_dir="$build_dir/checks_resilience"
      rm -rf "$out_dir"
      mkdir -p "$out_dir"
      CAMULT_BENCH_JSON="$out_dir" CAMULT_BENCH_SVC_JOBS=40 \
        CAMULT_BENCH_SEED=7 "$build_dir/bench/service_resilience"
      # unavailability is emitted only on healthy-tenant rows, so the bound
      # is exactly "healthy availability >= 0.99" (the noisy tenant is
      # allowed — expected — to fail and trip its breaker).
      "$build_dir/tools/check_bench_json" \
        --max-field unavailability=0.01 \
        "$out_dir/BENCH_service_resilience.json"
      ;;
    bench)
      say "gemm_kernel bench + JSON schema check"
      out_dir="$build_dir/checks_bench"
      rm -rf "$out_dir"
      mkdir -p "$out_dir"
      CAMULT_BENCH_JSON="$out_dir" "$build_dir/bench/gemm_kernel"
      "$build_dir/tools/check_bench_json" "$out_dir/BENCH_gemm_kernel.json"
      ;;
    window)
      say "sliding-window submission smoke (windowed fig6 + peak-memory assertion)"
      out_dir="$build_dir/checks_window"
      rm -rf "$out_dir"
      mkdir -p "$out_dir"
      # m=4096, n=512, b=8 -> 64 panel iterations, ~11k-20k tasks; with
      # window=4 the task store peaks at 2 slabs (~2 MB). Full-DAG
      # submission needs 3-5 slabs, so task_blocks_allocated=2 is a strict
      # windowing regression gate and peak_task_store_bytes backs it with
      # the byte budget the docs quote.
      CAMULT_BENCH_JSON="$out_dir" CAMULT_BENCH_REAL=1 \
        CAMULT_BENCH_M=4096 CAMULT_BENCH_NS=512 CAMULT_BENCH_B=8 \
        CAMULT_BENCH_WINDOW=4 "$build_dir/bench/fig6_lu_tall_m1e6"
      "$build_dir/tools/check_bench_json" \
        --max-field task_blocks_allocated=2 \
        --max-field peak_task_store_bytes=2600000 \
        "$out_dir/BENCH_fig6.json"
      ;;
    *)
      echo "run_checks.sh: unknown tier '$tier'" >&2
      exit 2
      ;;
  esac
done

say "all requested tiers passed ($tiers)"
